"""Fixture suites for the whole-program checkers RL101–RL104.

Each checker gets a minimal *bad* fixture it must fire on and an
idiomatic *good* twin it must stay silent on — the good twins are the
sanctioned idioms from the real tree (guard idiom, partial-not-lambda,
bound methods, narrowed optional params), so these tests double as the
specification of what the analyzer must never start flagging.
"""

import textwrap

from repro.analysis.checkers import AnalyzeConfig, analyze_paths


def write_pkg(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def analyze(tmp_path, files, select=(), pickle_roots=("pkg.service",)):
    root = write_pkg(tmp_path, files)
    config = AnalyzeConfig(select=select, pickle_roots=pickle_roots)
    findings, _stats = analyze_paths([str(root)], config)
    return findings


def codes(findings):
    return [v.code for v in findings]


# ---------------------------------------------------------------------------
# RL101: determinism taint
# ---------------------------------------------------------------------------
class TestRL101:
    def test_cross_file_laundered_wall_clock_fires(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/helpers.py": """\
                import time


                def now_s():
                    return time.time()
                """,
            "pkg/engine.py": """\
                from .helpers import now_s


                class Engine:
                    def tick(self):
                        self.t0 = now_s()
                """,
        }, select=("RL101",))
        assert codes(findings) == ["RL101"]
        assert findings[0].path.endswith("engine.py")
        assert "wall-clock" in findings[0].message
        assert "now_s()" in findings[0].message

    def test_two_hop_laundering_fires(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                import time


                def raw():
                    return time.perf_counter()
                """,
            "pkg/b.py": """\
                from .a import raw


                def wrapped():
                    value = raw()
                    return value * 2
                """,
            "pkg/c.py": """\
                from .b import wrapped


                class Meter:
                    def sample(self):
                        self.last = wrapped()
                """,
        }, select=("RL101",))
        assert codes(findings) == ["RL101"]
        assert findings[0].path.endswith("c.py")

    def test_local_laundering_through_arithmetic_fires(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                import time


                class A:
                    def m(self):
                        t = time.time()
                        u = t + 1.0
                        self.deadline = u
                """,
        }, select=("RL101",))
        assert codes(findings) == ["RL101"]

    def test_unseeded_rng_taint_fires_with_rng_kind(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                import random


                def draw():
                    return random.random()


                class A:
                    def m(self):
                        self.jitter = draw()
                """,
        }, select=("RL101",))
        assert codes(findings) == ["RL101"]
        assert "rng" in findings[0].message

    def test_sim_clock_and_seeded_stream_stay_silent(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                import random


                class A:
                    def m(self, sim, seed):
                        self.t0 = sim.now
                        self.rng = random.Random(seed)
                        self.jitter = self.rng.random()
                """,
        }, select=("RL101",))
        assert findings == []

    def test_suppression_with_reason_is_honoured(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                import time  # repro-lint: disable-file=RL101 (host telemetry, never enters the run)


                class A:
                    def m(self):
                        self.t0 = time.time()
                """,
        }, select=("RL101",))
        assert findings == []


# ---------------------------------------------------------------------------
# RL102: trace contract
# ---------------------------------------------------------------------------
_SCHEMA_MOD = """\
    EVENT_SCHEMAS = {
        "flow.start": ("src", "dst"),
        "flow.stop": ("reason",),
    }
    """


class TestRL102:
    def test_unregistered_type_and_missing_field_fire(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/trace.py": _SCHEMA_MOD,
            "pkg/user.py": """\
                class C:
                    def __init__(self, bus):
                        self.bus = bus

                    def go(self):
                        self.bus.emit("flow.start", src=1, dst=2)
                        self.bus.emit("flow.strt", src=1, dst=2)
                        self.bus.emit("flow.stop")
                """,
        }, select=("RL102",))
        messages = sorted(v.message for v in findings)
        assert codes(findings) == ["RL102", "RL102"]
        assert any("not registered" in m for m in messages)
        assert any("missing required field(s): reason" in m
                   for m in messages)

    def test_reserved_envelope_kwargs_fire(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/trace.py": _SCHEMA_MOD,
            "pkg/user.py": """\
                class C:
                    def __init__(self, bus):
                        self.bus = bus

                    def go(self):
                        self.bus.emit("flow.start", src=1, dst=2, t=0.5)
                        self.bus.emit("flow.stop", reason="x")
                """,
        }, select=("RL102",))
        assert codes(findings) == ["RL102"]
        assert "reserved envelope field(s) t" in findings[0].message

    def test_splat_site_skips_missing_field_check(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/trace.py": _SCHEMA_MOD,
            "pkg/user.py": """\
                class C:
                    def __init__(self, bus):
                        self.bus = bus

                    def go(self, kw):
                        self.bus.emit("flow.start", **kw)
                        self.bus.emit("flow.stop", **kw)
                """,
        }, select=("RL102",))
        assert findings == []

    def test_dead_schema_fires_at_registration_line(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/trace.py": _SCHEMA_MOD,
            "pkg/user.py": """\
                class C:
                    def __init__(self, bus):
                        self.bus = bus

                    def go(self):
                        self.bus.emit("flow.start", src=1, dst=2)
                """,
        }, select=("RL102",))
        assert codes(findings) == ["RL102"]
        assert findings[0].path.endswith("trace.py")
        assert "'flow.stop'" in findings[0].message
        assert "dead schema" in findings[0].message

    def test_string_literal_in_dispatch_table_counts_as_live(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/trace.py": _SCHEMA_MOD,
            "pkg/user.py": """\
                KIND_TO_TYPE = {"stop": "flow.stop"}


                class C:
                    def __init__(self, bus):
                        self.bus = bus

                    def go(self, kind, **fields):
                        self.bus.emit("flow.start", src=1, dst=2)
                        self.bus.emit(KIND_TO_TYPE[kind], **fields)
                """,
        }, select=("RL102",))
        assert findings == []


# ---------------------------------------------------------------------------
# RL103: unguarded optional hooks
# ---------------------------------------------------------------------------
class TestRL103:
    def test_unguarded_dereference_fires(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                class C:
                    def __init__(self, trace=None):
                        self.trace = trace

                    def hot(self):
                        self.trace.emit("x")
                """,
        }, select=("RL103",))
        assert codes(findings) == ["RL103"]
        assert "'C.trace' may be None" in findings[0].message

    def test_every_sanctioned_guard_idiom_stays_silent(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                class C:
                    def __init__(self, trace=None, sanitizer=None, obs=None):
                        self.trace = trace
                        self.sanitizer = sanitizer
                        self.obs = obs

                    def direct_guard(self):
                        if self.trace is not None:
                            self.trace.emit("x")

                    def alias_guard(self):
                        tr = self.trace
                        if tr is not None:
                            tr.emit("x")

                    def early_return(self):
                        if self.trace is None:
                            return
                        self.trace.emit("x")

                    def boolop_guard(self, flag):
                        san = self.sanitizer
                        if san is not None and flag:
                            san.check(1)

                    def or_early_return(self):
                        obs = self.obs
                        if obs is None or getattr(obs, "sim", None) is None:
                            return
                        obs.bus.emit("x")

                    def ifexp_guard(self):
                        san = self.sanitizer
                        prev = san.snapshot() if san is not None else None
                        return prev
                """,
        }, select=("RL103",))
        assert findings == []

    def test_narrowed_optional_param_is_not_optional(self, tmp_path):
        # The FaultyDatapath idiom: the *param* defaults to None but is
        # replaced before the store, so the attribute itself is never
        # None and unguarded uses are fine.
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                class Fallback:
                    def record(self, x):
                        pass


                class D:
                    def __init__(self, recorder=None):
                        if recorder is None:
                            recorder = Fallback()
                        self.recorder = recorder

                    def use(self):
                        self.recorder.record(1)
                """,
        }, select=("RL103",))
        assert findings == []

    def test_ifexp_defaulted_param_is_not_optional(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                class Fallback:
                    pass


                class D:
                    def __init__(self, recorder=None):
                        self.recorder = (recorder if recorder is not None
                                         else Fallback())

                    def use(self):
                        self.recorder.record(1)
                """,
        }, select=("RL103",))
        assert findings == []

    def test_guard_does_not_leak_across_statements(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/m.py": """\
                class C:
                    def __init__(self, trace=None):
                        self.trace = trace

                    def leaky(self):
                        if self.trace is not None:
                            pass
                        self.trace.emit("x")
                """,
        }, select=("RL103",))
        assert codes(findings) == ["RL103"]


# ---------------------------------------------------------------------------
# RL104: snapshot reachability
# ---------------------------------------------------------------------------
_STATE_MOD = """\
    from functools import partial

    _events = []


    class Box:
        def bad_lambda(self):
            self.cb = lambda x: x + 1

        def bad_local(self):
            def helper(x):
                return x
            self.cb = helper

        def bad_gen(self):
            self.items = (x for x in range(3))

        def bad_sched(self, sim):
            sim.schedule(1.0, lambda: None)

        def bad_registry(self):
            self.log = _events

        def good_partial(self):
            self.cb = partial(int, "3")

        def good_bound(self, sim):
            sim.schedule(1.0, self._tick)

        def good_param_shadow(self, log):
            self.log = log

        def _tick(self):
            pass
    """


class TestRL104:
    def test_all_unpicklable_stores_fire_in_picklable_set(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/service.py": "from . import state\n",
            "pkg/state.py": _STATE_MOD,
        }, select=("RL104",))
        assert codes(findings) == ["RL104"] * 5
        blob = "\n".join(v.message for v in findings)
        assert "lambda stored on 'self.cb'" in blob
        assert "'helper'" in blob
        assert "generator object stored on 'self.items'" in blob
        assert "passed to schedule()" in blob
        assert "aliases module-global mutable state '_events'" in blob

    def test_module_outside_pickle_closure_is_silent(self, tmp_path):
        # Same defects, but nothing the pickle roots reach imports the
        # module — lambdas there never meet a checkpoint.
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/service.py": "X = 1\n",
            "pkg/outside.py": _STATE_MOD,
        }, select=("RL104",))
        assert findings == []

    def test_function_local_import_does_not_extend_closure(self, tmp_path):
        # A function-level import is the sanctioned way to keep a module
        # OUT of the pickle closure; it must not create an import edge.
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/service.py": """\
                def lazily():
                    from . import outside
                    return outside
                """,
            "pkg/outside.py": _STATE_MOD,
        }, select=("RL104",))
        assert findings == []

    def test_dataclass_class_body_factory_lambda_is_silent(self, tmp_path):
        findings = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/service.py": """\
                from dataclasses import dataclass, field


                @dataclass
                class Cfg:
                    sampling: dict = field(default_factory=lambda: {"a": 1})
                """,
        }, select=("RL104",))
        assert findings == []
