"""Worker-crash resilience: a SIGKILLed pool worker costs one epoch.

The guarded runtime detects a dead worker (``BrokenProcessPool``),
rebuilds the pool and re-submits the victim cell; a *durable* cell
(:func:`repro.recovery.cell.durable_service_cell`) then resumes from its
own latest checkpoint.  The final merged results must be byte-identical
to a run nobody killed.
"""

import os
import signal

import pytest

from repro.runtime import Runtime, RunSpec, is_cell_error
from repro.runtime.spec import canonical_json

CELL = "repro.recovery.cell:durable_service_cell"

CONFIG = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=400.0,
              msg_sizes=[16_384, 65_536], msg_weights=[3, 1],
              peers=2, seed=5)
SCHEDULE = [{"epoch": 1, "op": "set_policy", "hosts": ["h1"],
             "policy": {"max_rwnd": 2920}}]


# Module-level workers: run specs reference them as f"{__name__}:name".
def kill_self(x):
    """A worker that dies hard, unconditionally (crash-budget tests)."""
    os.kill(os.getpid(), signal.SIGKILL)


def double(x):
    return x * 2


KILL_SELF = f"{__name__}:kill_self"
DOUBLE = f"{__name__}:double"


def map_with_padding(rt, spec):
    """Run ``spec`` plus a benign neighbour so the runtime takes the pool
    path — a single-cell batch executes serially, in *this* process, and
    a kill cell would take pytest down with it."""
    results = rt.map([spec, RunSpec(DOUBLE, {"x": 4})])
    assert results[1] == 8
    return results[0]


def cell_kwargs(seed, **extra):
    return dict(config={**CONFIG, "seed": seed}, schedule=SCHEDULE,
                epochs=3, **extra)


def test_killed_worker_cell_resumes_and_matches_baseline(tmp_path):
    baseline = Runtime(jobs=2).map([
        RunSpec(CELL, cell_kwargs(5)),
        RunSpec(CELL, cell_kwargs(6)),
    ])

    rt = Runtime(jobs=2, quarantine=True)
    results = rt.map([
        RunSpec(CELL, cell_kwargs(5, recovery_dir=str(tmp_path),
                                  kill={"at": 0.017})),
        RunSpec(CELL, cell_kwargs(6, recovery_dir=str(tmp_path))),
    ])
    assert rt.stats.worker_crashes == 1
    assert rt.stats.retries_used >= 1
    assert rt.stats.quarantined == 0
    assert not any(is_cell_error(r) for r in results)
    assert [canonical_json(r) for r in results] == \
        [canonical_json(r) for r in baseline]


def test_crash_budget_exhaustion_quarantines(tmp_path):
    rt = Runtime(jobs=2, quarantine=True, crash_retries=1)
    result = map_with_padding(rt, RunSpec(KILL_SELF, {"x": 1}))
    assert is_cell_error(result)
    assert result["cell_error"]["kind"] == "worker_crash"
    assert result["cell_error"]["attempts"] == 2  # initial + 1 crash retry
    assert rt.stats.worker_crashes == 2
    assert rt.stats.quarantined == 1


def test_crash_retries_zero_fails_fast():
    rt = Runtime(jobs=2, quarantine=True, crash_retries=0)
    result = map_with_padding(rt, RunSpec(KILL_SELF, {"x": 1}))
    assert is_cell_error(result)
    assert rt.stats.worker_crashes == 1
    assert rt.stats.retries_used == 0


def test_crash_retries_validated():
    with pytest.raises(ValueError):
        Runtime(crash_retries=-1)
    # Defaults to the exception retry budget.
    assert Runtime(retries=3).crash_retries == 3
    assert Runtime(retries=1, crash_retries=5).crash_retries == 5


def test_worker_crashes_surface_in_telemetry():
    rt = Runtime(jobs=2, quarantine=True, crash_retries=0)
    map_with_padding(rt, RunSpec(KILL_SELF, {"x": 1}))
    assert rt.telemetry()["worker_crashes"] == 1
