"""Failure-injection tests for the AC/DC datapath.

The feedback channel rides the data path: ACKs (and so PACKs) can be
lost, reordered or delayed.  The cumulative-counter encoding (§3.2) must
keep the vSwitch congestion control consistent through all of it.  The
injectors come from :mod:`repro.faults`, so the same seeded machinery
the chaos experiment sweeps is exercised here at unit scale.
"""

from repro.core import AcdcConfig, AcdcVswitch
from repro.faults import PacketLoss, install_faults, is_data, is_pure_ack
from repro.workloads.apps import Sink


def test_feedback_survives_ack_loss(three_hosts):
    """Losing 20% of ACKs (and their PACKs) must not corrupt the
    vSwitch's view: cumulative counters resynchronise on the next ACK."""
    sim, topo, a, b, c, sw = three_hosts
    vsw_a = AcdcVswitch(a)
    vsw_b = AcdcVswitch(b)
    inner_c = AcdcVswitch(c)
    # Drop egress pure ACKs at the receiver host, wire side of AC/DC.
    install_faults(c, [PacketLoss(0.2, seed=1, direction="egress",
                                  match=is_pure_ack)], inner=inner_c)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    Sink(c, 7000)
    conns = []
    for src in (a, b):
        conn = src.connect(c.addr, 7000)
        conn.send_forever()
        conns.append(conn)
    sim.run(until=0.2)
    # Flows keep moving at close to line rate despite feedback loss.
    total = sum(cn.bytes_acked_total for cn in conns) * 8 / 0.2
    assert total > 8e9
    # The reader's cumulative totals never exceed what was received.
    for src, vsw in (("h1", vsw_a), ("h2", vsw_b)):
        for entry in vsw.table:
            if entry.key[0] == src:
                received = inner_c.table.entries[entry.key] \
                    .receiver_feedback.total_bytes
                assert entry.feedback_reader.last_total <= received


def test_acdc_flow_recovers_from_data_loss(three_hosts):
    """Window inference survives real loss: dupack detection in the
    vSwitch cuts the window (loss branch of Fig. 5)."""
    sim, topo, a, b, c, sw = three_hosts
    vsw_a = AcdcVswitch(a)
    pipeline = install_faults(
        a, [PacketLoss(0.02, seed=7, direction="egress", match=is_data)],
        inner=vsw_a)
    for host in (b, c):
        host.attach_vswitch(AcdcVswitch(host))
    Sink(c, 7000)
    conn = a.connect(c.addr, 7000)
    conn.send(2_000_000)
    sim.run(until=1.0)
    assert conn.bytes_acked_total == 2_000_000
    assert pipeline.recorder.counts["loss"] > 0
    entry = vsw_a.table.entries[conn.key()]
    assert entry.vswitch_cc.loss_events > 0  # Fig. 5 loss branch taken


def test_gc_under_connection_churn(two_hosts):
    """Hundreds of short connections: the table grows and then shrinks
    back via FIN + GC, never leaking entries."""
    sim, topo, a, b, _sw = two_hosts
    vsw_a = AcdcVswitch(a, config=AcdcConfig(gc_interval=0.2))
    vsw_b = AcdcVswitch(b, config=AcdcConfig(gc_interval=0.2))
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    Sink(b, 7000)
    for i in range(100):
        def open_one():
            conn = a.connect(b.addr, 7000)
            conn.send(2000)
            conn.close()
        sim.schedule(i * 0.001, open_one)
    sim.run(until=0.15)
    assert len(vsw_a.table) >= 150   # 2 entries per live connection
    sim.run(until=5.0)
    assert len(vsw_a.table) == 0
    assert len(vsw_b.table) == 0
    assert vsw_a.table.removes >= 200
