"""Unit tests for the per-flow conformance monitor (repro.guard.monitor).

The monitor is pure bookkeeping over datapath observations, so these
tests drive it with synthetic packets/verdicts — no simulator needed.
"""

import random
from collections import namedtuple

import pytest

from repro.guard import ConformanceMonitor, FlowConformance, GuardConfig
from repro.guard.monitor import (
    ANOMALY_ACK_DIVISION,
    ANOMALY_BLEACH,
    ANOMALY_FEEDBACK_LOSS,
    CLEAN,
    SUSPECT,
    VIOLATOR,
    state_for_level,
)
from repro.net.packet import SEQ_MASK

MSS = 1000

Verdict = namedtuple("Verdict", "newly_acked loss_detected")
Pkt = namedtuple("Pkt", "end_seq")


def make(window_packets=8, **over):
    cfg = GuardConfig(window_packets=window_packets, **over)
    mon = ConformanceMonitor(cfg, mss=MSS)
    fc = FlowConformance(random.Random(0))
    return mon, fc


def test_state_for_level_mapping():
    assert state_for_level(0) == "conforming"
    assert state_for_level(1) == "suspect"
    assert state_for_level(2) == "violator"
    assert state_for_level(3) == "violator"


# ----------------------------------------------------------------------
# Advertised-edge tracking
# ----------------------------------------------------------------------
def test_advertised_edge_is_serial_max():
    mon, fc = make()
    mon.note_advertisement(fc, 1000, 5000)
    assert fc.advertised_edge == 6000
    # A smaller later advertisement never retracts the edge: data sent
    # against the bigger one is still legitimately in flight.
    mon.note_advertisement(fc, 1500, 2000)
    assert fc.advertised_edge == 6000
    mon.note_advertisement(fc, 4000, 5000)
    assert fc.advertised_edge == 9000


def test_advertised_edge_survives_sequence_wrap():
    mon, fc = make()
    near_wrap = SEQ_MASK - 500
    mon.note_advertisement(fc, near_wrap, 2000)
    assert fc.advertised_edge == (near_wrap + 2000) & SEQ_MASK
    # Post-wrap advertisement is serially greater despite a smaller int.
    mon.note_advertisement(fc, 3000, 2000)
    assert fc.advertised_edge == 5000


def test_no_monitoring_before_first_advertisement():
    mon, fc = make()
    violation, overrun = mon.observe_egress(fc, None, Pkt(end_seq=10 ** 6))
    assert (violation, overrun) == (False, 0)
    assert fc.window_packets == 0  # not even counted toward a window


def test_egress_within_edge_is_conforming():
    mon, fc = make()
    mon.note_advertisement(fc, 0, 10 * MSS)
    violation, overrun = mon.observe_egress(fc, None, Pkt(end_seq=10 * MSS))
    assert (violation, overrun) == (False, 0)
    assert fc.window_packets == 1


def test_egress_beyond_edge_reports_overrun_and_violation():
    mon, fc = make()  # default slack: 2 segments
    mon.note_advertisement(fc, 0, 10 * MSS)
    # Past the edge but within slack: overrun reported, not a violation.
    violation, overrun = mon.observe_egress(
        fc, None, Pkt(end_seq=11 * MSS))
    assert violation is False
    assert overrun == MSS
    # Past edge + slack: a monitored violation.
    violation, overrun = mon.observe_egress(
        fc, None, Pkt(end_seq=13 * MSS))
    assert violation is True
    assert overrun == 3 * MSS
    assert fc.window_violations == 1
    assert fc.total_violations == 1


def test_retransmissions_behind_edge_never_violate():
    mon, fc = make()
    mon.note_advertisement(fc, 50 * MSS, 10 * MSS)
    violation, overrun = mon.observe_egress(fc, None, Pkt(end_seq=MSS))
    assert (violation, overrun) == (False, 0)


# ----------------------------------------------------------------------
# Window grading
# ----------------------------------------------------------------------
def grade_window(mon, fc, violations, packets):
    mon.note_advertisement(fc, 0, 10 * MSS)
    for i in range(packets):
        end = 20 * MSS if i < violations else MSS
        mon.observe_egress(fc, None, Pkt(end_seq=end))
    return mon.close_window(fc)


def test_close_window_not_full_returns_none():
    mon, fc = make(window_packets=8)
    assert grade_window(mon, fc, 0, 7) is None


@pytest.mark.parametrize("violations,expected", [
    (0, CLEAN), (1, CLEAN), (2, SUSPECT), (3, SUSPECT), (4, VIOLATOR),
    (8, VIOLATOR),
])
def test_close_window_grades_by_violation_rate(violations, expected):
    # Defaults: suspect at >= 25%, violator at >= 50% of 8 packets.
    mon, fc = make(window_packets=8)
    assert grade_window(mon, fc, violations, 8) == expected
    # Grading resets the window counters.
    assert fc.window_packets == 0
    assert fc.window_violations == 0


# ----------------------------------------------------------------------
# ACK-side anomalies
# ----------------------------------------------------------------------
def test_feedback_loss_raised_after_threshold_bytes():
    mon, fc = make(feedback_loss_bytes=10 * MSS)
    for _ in range(10):
        assert mon.observe_ack(fc, Verdict(MSS, False), 0, 0) == []
    assert mon.observe_ack(fc, Verdict(MSS, False), 0, 0) == [
        ANOMALY_FEEDBACK_LOSS]


def test_feedback_delta_resets_loss_accumulator():
    mon, fc = make(feedback_loss_bytes=10 * MSS)
    for _ in range(10):
        mon.observe_ack(fc, Verdict(MSS, False), 0, 0)
    mon.observe_ack(fc, Verdict(MSS, False), total_delta=MSS, marked_delta=0)
    assert fc.acked_since_feedback == 0
    assert mon.observe_ack(fc, Verdict(MSS, False), 0, 0) == []


def test_feedback_loss_suppressed_once_fallback_active():
    mon, fc = make(feedback_loss_bytes=MSS)
    fc.fallback_active = True
    for _ in range(10):
        assert mon.observe_ack(fc, Verdict(MSS, False), 0, 0) == []


def test_bleach_needs_working_feedback_channel():
    mon, fc = make(bleach_loss_events=2)
    # Losses with a channel that never reported anything: that is the
    # feedback-loss case, not bleaching.
    for _ in range(5):
        assert ANOMALY_BLEACH not in mon.observe_ack(
            fc, Verdict(MSS, True), 0, 0)
    assert fc.loss_zero_mark == 0


def test_bleach_fires_on_losses_with_zero_marks_and_rearms():
    mon, fc = make(bleach_loss_events=2)
    mon.observe_ack(fc, Verdict(MSS, False), total_delta=MSS, marked_delta=0)
    assert mon.observe_ack(fc, Verdict(MSS, True), 0, 0) == []
    assert mon.observe_ack(fc, Verdict(MSS, True), 0, 0) == [ANOMALY_BLEACH]
    # Counter re-armed: persistence keeps firing.
    assert mon.observe_ack(fc, Verdict(MSS, True), 0, 0) == []
    assert mon.observe_ack(fc, Verdict(MSS, True), 0, 0) == [ANOMALY_BLEACH]


def test_single_marked_byte_disarms_bleach_forever():
    mon, fc = make(bleach_loss_events=2)
    mon.observe_ack(fc, Verdict(MSS, False), total_delta=MSS, marked_delta=1)
    for _ in range(5):
        assert mon.observe_ack(fc, Verdict(MSS, True), 0, 0) == []


def test_timeouts_feed_the_bleach_detector():
    mon, fc = make(bleach_loss_events=3)
    mon.observe_ack(fc, Verdict(MSS, False), total_delta=MSS, marked_delta=0)
    assert mon.observe_timeout(fc) == []
    assert mon.observe_timeout(fc) == []
    assert mon.observe_timeout(fc) == [ANOMALY_BLEACH]


def test_ack_division_detected_over_a_window_of_acks():
    mon, fc = make(window_packets=8, ack_division_fraction=0.25,
                   ack_division_rate=0.5)
    # 8 ACKs, 5 of them slivers (< 250 bytes): rate 5/8 >= 0.5.
    anomalies = []
    for i in range(8):
        acked = 100 if i < 5 else MSS
        anomalies += mon.observe_ack(fc, Verdict(acked, False), MSS, 0)
    assert anomalies == [ANOMALY_ACK_DIVISION]
    assert fc.ack_count == 0  # window reset


def test_full_mss_acks_never_flag_division():
    mon, fc = make(window_packets=8)
    for _ in range(20):
        assert ANOMALY_ACK_DIVISION not in mon.observe_ack(
            fc, Verdict(MSS, False), MSS, 0)
