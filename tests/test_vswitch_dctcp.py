"""Unit tests for the Fig. 5 DCTCP-in-the-vSwitch state machine."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dctcp_vswitch import ALPHA_MAX, VswitchDctcp
from repro.core.priority import priority_decrease, rwnd_cap_for_rate, validate_beta

MSS = 1460


def make(beta=1.0, **kw):
    return VswitchDctcp(mss=MSS, beta=beta, **kw)


def test_initial_window_is_ten_segments():
    cc = make()
    assert cc.window_bytes == 10 * MSS


def test_slow_start_growth():
    cc = make()
    cc.ssthresh = float(1 << 30)
    wnd = cc.on_ack(snd_una=MSS, snd_nxt=11 * MSS, newly_acked=MSS,
                    feedback_total=MSS, feedback_marked=0, loss=False)
    assert wnd == 11 * MSS


def test_congestion_avoidance_growth_about_one_mss_per_window():
    cc = make()
    cc.ssthresh = cc.wnd  # CA mode
    start = cc.window_bytes
    una = 0
    for _ in range(10):  # one window of ACKs
        una += MSS
        cc.on_ack(una, una + 10 * MSS, MSS, MSS, 0, loss=False)
    assert 0.7 * MSS <= cc.window_bytes - start <= 1.5 * MSS


def test_alpha_updates_once_per_window():
    cc = make()
    cc.alpha = 1.0
    # All feedback unmarked within one window: single EWMA step.
    cc.on_ack(0, 10 * MSS, MSS, 5 * MSS, 0, loss=False)
    first = cc.alpha
    cc.on_ack(5 * MSS, 10 * MSS, MSS, 5 * MSS, 0, loss=False)  # same window
    assert cc.alpha == first
    cc.on_ack(10 * MSS, 20 * MSS, MSS, 5 * MSS, 0, loss=False)  # next window
    assert cc.alpha < first


def test_alpha_converges_to_marked_fraction():
    cc = make()
    una = 0
    for window in range(300):
        una += 10 * MSS
        cc.on_ack(una, una + 10 * MSS, MSS, 8 * MSS, 0, loss=False)
        cc.on_ack(una, una + 10 * MSS, 0, 2 * MSS, 2 * MSS, loss=False)
    assert 0.15 < cc.alpha < 0.25


def test_cut_at_most_once_per_window():
    cc = make()
    cc.wnd = 100.0 * MSS
    cc.alpha = 0.5
    # Freeze alpha: park the gate serially ahead of every snd_una used
    # here, and mark the gates seeded so on_ack doesn't re-anchor them.
    cc.alpha_update_seq = 1 << 30
    cc._gates_seeded = True
    cc.on_ack(0, 100 * MSS, 0, MSS, MSS, loss=False)
    after_first = cc.window_bytes
    assert after_first == int(100 * MSS * 0.75)
    # More marks within the same window: no further cut.
    cc.on_ack(50 * MSS, 100 * MSS, 0, MSS, MSS, loss=False)
    assert cc.window_bytes == after_first
    assert cc.cuts == 1


def test_priority_beta_modulates_cut():
    full = make(beta=1.0)
    weak = make(beta=0.0)
    for cc in (full, weak):
        cc.wnd = 100.0 * MSS
        cc.alpha = 0.4
        cc.alpha_update_seq = 1 << 30  # freeze alpha (serially ahead)
        cc._gates_seeded = True
        cc.on_ack(0, 100 * MSS, 0, MSS, MSS, loss=False)
    assert full.window_bytes == int(100 * MSS * (1 - 0.2))
    assert weak.window_bytes == int(100 * MSS * (1 - 0.4))


def test_loss_saturates_alpha_and_cuts():
    cc = make()
    cc.wnd = 80.0 * MSS
    cc.alpha = 0.1
    wnd = cc.on_ack(0, 80 * MSS, 0, 0, 0, loss=True)
    assert cc.alpha == ALPHA_MAX
    assert wnd == max(int(80 * MSS * 0.5), cc.min_wnd)
    assert cc.loss_events == 1


def test_timeout_forces_cut_even_mid_window():
    cc = make()
    cc.wnd = 80.0 * MSS
    cc.cut_seq = 1 << 30  # pretend we just cut (gate serially ahead)
    cc._gates_seeded = True
    wnd = cc.on_timeout(snd_una=0, snd_nxt=80 * MSS)
    assert wnd == 40 * MSS
    assert cc.alpha == ALPHA_MAX


def test_floor_default_is_one_mss():
    cc = make()
    cc.wnd = 0.0
    assert cc.window_bytes == MSS


def test_custom_floor_and_cap():
    cc = VswitchDctcp(mss=MSS, min_wnd_bytes=500, max_wnd_bytes=20 * MSS)
    cc.wnd = 0.0
    assert cc.window_bytes == 500
    cc.wnd = 100.0 * MSS
    assert cc.window_bytes == 20 * MSS


def test_growth_respects_cap():
    cc = VswitchDctcp(mss=MSS, max_wnd_bytes=12 * MSS)
    cc.ssthresh = float(1 << 30)
    for i in range(1, 20):
        cc.on_ack(i * MSS, (i + 10) * MSS, MSS, MSS, 0, loss=False)
    assert cc.window_bytes == 12 * MSS


def test_invalid_mss_rejected():
    with pytest.raises(ValueError):
        VswitchDctcp(mss=0)


@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=300))
def test_window_always_within_bounds(events):
    """Property: whatever the feedback sequence, the window stays within
    [min_wnd, max_wnd] and alpha within [0, 1]."""
    cc = VswitchDctcp(mss=MSS, min_wnd_bytes=MSS, max_wnd_bytes=50 * MSS)
    una = 0
    for marked_tenths, loss in events:
        una += 5 * MSS
        marked = marked_tenths * MSS
        cc.on_ack(una, una + 10 * MSS, MSS, 5 * MSS, min(marked, 5 * MSS),
                  loss=loss)
        assert MSS <= cc.window_bytes <= 50 * MSS
        assert 0.0 <= cc.alpha <= 1.0


# ---------------------------------------------------------------------------
# Equation 1 helpers
# ---------------------------------------------------------------------------
def test_priority_decrease_beta_one_is_dctcp():
    assert priority_decrease(1000, 0.5, 1.0) == pytest.approx(750)


def test_priority_decrease_beta_zero_full_backoff():
    assert priority_decrease(1000, 0.5, 0.0) == pytest.approx(500)


def test_priority_decrease_monotone_in_beta():
    results = [priority_decrease(1000, 0.6, b) for b in (0.0, 0.25, 0.5, 1.0)]
    assert results == sorted(results)


def test_validate_beta_bounds():
    with pytest.raises(ValueError):
        validate_beta(-0.1)
    with pytest.raises(ValueError):
        validate_beta(1.1)
    assert validate_beta(0.5) == 0.5


def test_priority_decrease_rejects_bad_alpha():
    with pytest.raises(ValueError):
        priority_decrease(1000, 1.5, 0.5)


def test_rwnd_cap_for_rate():
    # 2 Gb/s at 100 us RTT = 25 KB window.
    assert rwnd_cap_for_rate(2e9, 100e-6) == 25_000
    with pytest.raises(ValueError):
        rwnd_cap_for_rate(0, 1)
