"""In-band network telemetry (repro.obs.int): unit, integration, faults.

The contracts under test, per DESIGN.md §16:

* stamper/sink/echo/view protocol — per-hop aggregation, window serials,
  loss detection, restart resync, deterministic bottleneck choice;
* degradation under mangling — an invalid stack or echo is a counted,
  traced "no report", never an exception and never a packet drop;
* zero-cost-off — without an ``IntTelemetry`` the run emits no ``int.*``
  events and the packets never grow metadata;
* byte-identity — an INT-enabled cell replayed through the serial, pool
  and cache runtime paths returns byte-identical telemetry;
* SLO integration — per-hop queue-depth p99 grades a canary cohort, and
  only when both cohorts actually carried INT samples.
"""

import pytest

from repro.control.service import Service, ServiceConfig
from repro.control.slo import CohortSample, SloThresholds, evaluate_slos
from repro.core import AcdcVswitch
from repro.experiments.common import ACDC
from repro.experiments.runners import run_incast
from repro.faults import IntMangler, OptionStrip, install_faults, is_data, \
    is_pure_ack
from repro.metrics import FaultRecorder
from repro.net.packet import Packet
from repro.obs import IntEcho, IntSink, IntTelemetry, MAX_INT_HOPS, \
    ObsContext, TelemetryView
from repro.obs.int import valid_echo, valid_hop, valid_stack
from repro.runtime import RunSpec, Runtime, canonical_json
from repro.workloads.apps import Sink

HOP = ("sw.p0", 1000, 1000.0, 5000, 0.5, 1e-4)


def _agg(hop, q_max=5000.0, residence=1e-4):
    """One echo hop aggregate: (hop, q_last, q_max, q_ewma, util,
    residence_sum, residence_max)."""
    return (hop, q_max, q_max, q_max, 0.5, residence, residence)


def _echo(serial=1, hops=(("sw.p0", 5000.0),), stacks=1):
    path = tuple(h[0] for h in hops)
    return IntEcho(serial, path, tuple(_agg(h, q) for h, q in hops), stacks)


# ---------------------------------------------------------------------------
# Validators
# ---------------------------------------------------------------------------
def test_valid_hop_shapes():
    assert valid_hop(HOP)
    assert not valid_hop(HOP[:3])                       # wrong arity
    assert not valid_hop(list(HOP))                     # wrong container
    assert not valid_hop(("", 1, 1.0, 1, 0.5, 1e-4))    # empty hop id
    assert not valid_hop(("sw.p0", -1, 1.0, 1, 0.5, 1e-4))   # negative
    assert not valid_hop(("sw.p0", True, 1.0, 1, 0.5, 1e-4))  # bool != num
    assert not valid_hop(("sw.p0", "1", 1.0, 1, 0.5, 1e-4))


def test_valid_stack_bounds():
    assert valid_stack([HOP])
    assert valid_stack([HOP] * MAX_INT_HOPS)
    assert not valid_stack([])
    assert not valid_stack([HOP] * (MAX_INT_HOPS + 1))
    assert not valid_stack(tuple([HOP]))
    assert not valid_stack([HOP, HOP[:2]])


def test_valid_echo_shapes():
    assert valid_echo(_echo())
    assert not valid_echo(None)
    assert not valid_echo(object())
    assert not valid_echo(IntEcho(0, ("a",), (_agg("a"),), 1))   # serial < 1
    assert not valid_echo(IntEcho(-1, ("a",), (_agg("a"),), 1))
    assert not valid_echo(IntEcho(1, (), (), 1))                 # empty path
    assert not valid_echo(IntEcho(1, ("a",), (), 1))             # mismatch
    assert not valid_echo(IntEcho(1, ("a",), (_agg("b"),), 1))   # wrong hop
    assert not valid_echo(IntEcho(1, ("a",), (_agg("a"),), 0))   # no stacks
    bad = ("a", -1.0, 1.0, 1.0, 0.5, 1e-4, 1e-4)
    assert not valid_echo(IntEcho(1, ("a",), (bad,), 1))


# ---------------------------------------------------------------------------
# Sink: window aggregation and echo serials
# ---------------------------------------------------------------------------
def test_sink_aggregates_and_resets_windows():
    sink = IntSink()
    assert sink.make_echo() is None          # empty window: nothing to say
    assert sink.absorb([("a", 100, 100.0, 1000, 0.5, 1e-4),
                        ("b", 200, 200.0, 1000, 0.5, 2e-4)])
    assert sink.absorb([("a", 300, 300.0, 2000, 0.6, 3e-4),
                        ("b", 50, 50.0, 2000, 0.6, 4e-4)])
    echo = sink.make_echo()
    assert valid_echo(echo)
    assert echo.serial == 1 and echo.stacks == 2
    assert echo.path == ("a", "b")
    a, b = echo.hops
    assert a[1] == 300 and a[2] == 300       # last and max queue
    assert b[1] == 50 and b[2] == 200
    assert a[5] == pytest.approx(4e-4)       # residence sum
    assert b[6] == pytest.approx(4e-4)       # residence max
    # The window closed: the next echo starts fresh with serial 2.
    assert sink.make_echo() is None
    assert sink.absorb([("a", 1, 1.0, 1, 0.1, 1e-5)])
    assert sink.make_echo().serial == 2


def test_sink_path_change_restarts_window():
    sink = IntSink()
    sink.absorb([("a", 100, 100.0, 1000, 0.5, 1e-4)])
    sink.absorb([("c", 700, 700.0, 1000, 0.5, 1e-4)])   # reroute mid-window
    echo = sink.make_echo()
    assert echo.path == ("c",) and echo.stacks == 1


def test_sink_counts_invalid_stacks():
    sink = IntSink()
    assert not sink.absorb([HOP[:2]])
    assert not sink.absorb("garbage")
    assert sink.invalid == 2 and sink.absorbed == 0
    assert sink.make_echo() is None


# ---------------------------------------------------------------------------
# View: serials, loss, resync, bottleneck choice
# ---------------------------------------------------------------------------
def test_view_tracks_bottleneck_and_decomposition():
    view = TelemetryView()
    echo = _echo(hops=(("a", 100.0), ("b", 900.0), ("c", 300.0)), stacks=2)
    status, changed = view.on_echo(echo, now=0.5)
    assert status == "ok" and not changed
    assert view.bottleneck == "b" and view.q_max_bytes == 900.0
    assert view.hop_residence_s["a"] == pytest.approx(5e-5)
    assert view.residence_s == pytest.approx(1.5e-4)
    assert view.q_samples == [900.0]
    assert view.updated_at == 0.5


def test_view_bottleneck_tie_breaks_to_first_hop():
    view = TelemetryView()
    view.on_echo(_echo(hops=(("a", 500.0), ("b", 500.0))), now=0.0)
    assert view.bottleneck == "a"


def test_view_serial_gap_counts_losses_and_restart_resyncs():
    view = TelemetryView()
    view.on_echo(_echo(serial=1), now=0.0)
    view.on_echo(_echo(serial=4), now=0.1)    # 2 and 3 never arrived
    assert view.lost == 2 and view.reports == 2
    # Receiver restart: serials start over; resync, no loss counted.
    view.on_echo(_echo(serial=1), now=0.2)
    assert view.lost == 2 and view.last_serial == 1


def test_view_path_change_counted():
    view = TelemetryView()
    view.on_echo(_echo(serial=1, hops=(("a", 1.0),)), now=0.0)
    status, changed = view.on_echo(
        _echo(serial=2, hops=(("b", 1.0),)), now=0.1)
    assert changed and view.path_changes == 1 and view.path == ("b",)


def test_view_invalid_echo_counted_not_raised():
    view = TelemetryView()
    assert view.on_echo(object(), now=0.0) == ("invalid", False)
    assert view.invalid == 1 and view.reports == 0
    assert view.summary()["invalid"] == 1


# ---------------------------------------------------------------------------
# End-to-end on the packet datapath
# ---------------------------------------------------------------------------
def _small_incast(int_tel=None, obs=None, n=4):
    return run_incast(ACDC, n_senders=n, duration=0.05, mtu=1500,
                      rate_bps=1e9, obs=obs, int_tel=int_tel)


def test_incast_pipeline_stamps_echoes_and_reports():
    tel = IntTelemetry()
    obs = ObsContext()
    _small_incast(int_tel=tel, obs=obs)
    snap = tel.snapshot()
    assert snap["stamped"] > 0 and snap["overflowed"] == 0
    assert snap["stacks_invalid"] == 0 and snap["reports_invalid"] == 0
    assert snap["stacks_absorbed"] > 0
    assert snap["reports_ok"] > 0
    # Echoes consume whole windows: never more echoes than stacks.
    assert snap["echoes_attached"] <= snap["stacks_absorbed"]
    views = tel.views()
    assert views, "sender views must exist"
    for view in views.values():
        assert view.path and view.bottleneck in view.path
    reports = [r for r in obs.bus.records() if r["type"] == "int.report"]
    assert reports and all(r["status"] == "ok" for r in reports)
    # Metric registry carries both the run totals and per-hop sources.
    metrics = obs.snapshot()["metrics"]
    assert metrics["int.reports_ok"] == snap["reports_ok"]
    assert any(k.startswith("int.hop.sw.p") for k in metrics)


def test_incast_pipeline_is_deterministic():
    def one():
        tel = IntTelemetry()
        obs = ObsContext()
        _small_incast(int_tel=tel, obs=obs)
        ints = [r for r in obs.bus.records()
                if str(r["type"]).startswith("int.")]
        return canonical_json({"snap": tel.snapshot(), "events": ints})
    assert one() == one()


def test_zero_cost_off_emits_nothing():
    obs = ObsContext()
    result = _small_incast(obs=obs)
    assert not any(str(r["type"]).startswith("int.")
                   for r in obs.bus.records())
    assert not any(k.startswith("int") for k in result.telemetry["metrics"])


# ---------------------------------------------------------------------------
# Fault injection: mangled metadata degrades, never crashes
# ---------------------------------------------------------------------------
class _StubPipe:
    def __init__(self):
        self.recorder = FaultRecorder()

    def record(self, cause):
        self.recorder.record(cause)


def test_int_mangler_strip_clears_metadata():
    fault = IntMangler("strip")
    pkt = Packet(src="a", dst="b", sport=1, dport=2, payload_len=100)
    pkt.int_stack = [HOP]
    pkt.int_echo = _echo()
    out = fault.process(pkt, _StubPipe(), 0, "ingress")
    assert out is pkt and out.int_stack is None and out.int_echo is None
    assert fault.events == 1 and fault.kind == "int_strip"


def test_int_mangler_corrupt_is_invalid_but_well_typed():
    fault = IntMangler("corrupt")
    pkt = Packet(src="a", dst="b", sport=1, dport=2, payload_len=100)
    pkt.int_stack = [HOP]
    echo = _echo()
    pkt.int_echo = echo
    fault.process(pkt, _StubPipe(), 0, "ingress")
    assert pkt.int_stack is not None and not valid_stack(pkt.int_stack)
    assert pkt.int_echo is not None and not valid_echo(pkt.int_echo)
    # The shared original was replaced, never mutated.
    assert pkt.int_echo is not echo and valid_echo(echo)


def test_int_mangler_ignores_bare_packets():
    fault = IntMangler("strip")
    pkt = Packet(src="a", dst="b", sport=1, dport=2, payload_len=100)
    assert fault.process(pkt, _StubPipe(), 0, "ingress") is pkt
    assert fault.events == 0


def test_int_mangler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        IntMangler("truncate")
    with pytest.raises(ValueError):
        IntMangler("strip", rate=1.5)


def test_option_strip_drops_int_metadata_too():
    fault = OptionStrip()
    pkt = Packet(src="a", dst="b", sport=1, dport=2, ack=True)
    pkt.int_stack = [HOP]
    pkt.int_echo = _echo()
    fault.process(pkt, _StubPipe(), 0, "ingress")
    assert pkt.int_stack is None and pkt.int_echo is None
    assert fault.events == 1


def _faulted_transfer(two_hosts, faults, on_receiver):
    """One AC/DC transfer with INT on and a fault chain on one side."""
    sim, topo, a, b, _sw = two_hosts
    obs = ObsContext(sim)
    tel = IntTelemetry(sim)
    tel.attach_topology(topo)
    vsw_a, vsw_b = AcdcVswitch(a, obs=obs), AcdcVswitch(b, obs=obs)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    tel.attach_vswitch(vsw_a)
    tel.attach_vswitch(vsw_b)
    install_faults(b if on_receiver else a, faults)
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(300_000)
    sim.run(until=0.5)
    assert conn.bytes_acked_total == 300_000, \
        "INT mangling must never cost payload"
    return tel, obs


def test_corrupt_stacks_degrade_to_counted_invalid(two_hosts):
    tel, obs = _faulted_transfer(
        two_hosts,
        [IntMangler("corrupt", direction="ingress", match=is_data, seed=3)],
        on_receiver=True)
    snap = tel.snapshot()
    assert snap["stacks_invalid"] > 0
    assert any(r["type"] == "int.report" and r["status"] == "invalid_stack"
               and r["sev"] == "warning" for r in obs.bus.records())


def test_corrupt_echoes_degrade_to_counted_invalid(two_hosts):
    tel, obs = _faulted_transfer(
        two_hosts,
        [IntMangler("corrupt", direction="ingress", match=is_pure_ack,
                    seed=3)],
        on_receiver=False)
    snap = tel.snapshot()
    assert snap["reports_invalid"] > 0
    assert any(r["type"] == "int.report" and r["status"] == "invalid_echo"
               for r in obs.bus.records())


def test_strip_silences_telemetry_without_breaking_flow(two_hosts):
    tel, obs = _faulted_transfer(
        two_hosts,
        [IntMangler("strip", direction="ingress")],
        on_receiver=True)
    snap = tel.snapshot()
    # Data-direction stacks never reach the sink; the echo channel may
    # still report the reverse (ACK-carrying) direction's hops.
    assert snap["stacks_absorbed"] < snap["stamped"]
    assert snap["stacks_invalid"] == 0


# ---------------------------------------------------------------------------
# Byte-identity across serial / pool / cache (DESIGN.md §10)
# ---------------------------------------------------------------------------
CELL = "repro.experiments.int_attribution:_cell"
CELL_KW = {"variant": "edge", "n_senders": 3, "msg_bytes": 16_384,
           "rounds": 2, "seed": 0}


def test_int_telemetry_byte_identical_across_serial_pool_and_cache(tmp_path):
    specs = [RunSpec(CELL, {**CELL_KW, "telemetry": True})]
    serial = Runtime(jobs=1).map(specs)
    pool_rt = Runtime(jobs=2, cache=tmp_path)
    pooled = pool_rt.map(specs)
    assert pool_rt.stats.executed == 1
    warm = Runtime(jobs=2, cache=tmp_path)
    cached = warm.map(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 1
    assert canonical_json(serial) == canonical_json(pooled)
    assert canonical_json(serial) == canonical_json(cached)
    trace = serial[0]["trace"]
    assert any(str(r.get("type", "")).startswith("int.") for r in trace), \
        "the identity contract must cover int.* events"
    assert serial[0]["int"]["reports_ok"] > 0


def test_attribution_experiment_flips_with_topology():
    from repro.experiments.int_attribution import run
    out = run(quick=True)
    assert out["edge"]["attribution_correct"]
    assert out["core"]["attribution_correct"]
    assert out["attribution_flips"]
    assert out["edge"]["completed"] == out["edge"]["expected_messages"]


# ---------------------------------------------------------------------------
# SLO integration
# ---------------------------------------------------------------------------
def _cohort(fcts=8, queues=None):
    sample = CohortSample(hosts=2, fcts=[0.001] * fcts, arrivals=fcts)
    sample.queue_depths = list(queues or [])
    return sample


def test_queue_p99_violation_detected():
    slo = SloThresholds(queue_p99_ratio=2.0, queue_p99_floor_bytes=1000.0)
    canary = _cohort(queues=[50_000.0] * 10)
    baseline = _cohort(queues=[10_000.0] * 10)
    violations = evaluate_slos(canary, baseline, slo)
    assert [v["slo"] for v in violations] == ["int_queue_p99"]
    assert violations[0]["limit"] == pytest.approx(20_000.0)


def test_queue_p99_is_vacuous_without_samples_on_both_sides():
    slo = SloThresholds(queue_p99_ratio=1.0)
    # INT off everywhere, canary dark, baseline dark: never graded.
    for canary_q, baseline_q in (([], []), ([], [1.0]), ([9e9], [])):
        violations = evaluate_slos(_cohort(queues=canary_q),
                                   _cohort(queues=baseline_q), slo)
        assert violations == []


def test_queue_p99_floor_suppresses_noise():
    slo = SloThresholds(queue_p99_ratio=2.0, queue_p99_floor_bytes=30_000.0)
    canary = _cohort(queues=[50_000.0])   # under floor * ratio
    baseline = _cohort(queues=[100.0])
    assert evaluate_slos(canary, baseline, slo) == []


def test_slo_threshold_validation():
    with pytest.raises(ValueError):
        SloThresholds(queue_p99_ratio=0.5)
    with pytest.raises(ValueError):
        SloThresholds(queue_p99_floor_bytes=-1.0)
    assert SloThresholds().to_json()["queue_p99_ratio"] == 3.0


def test_cohort_sample_reports_queue_aggregates():
    sample = _cohort(queues=[1.0, 2.0, 3.0])
    payload = sample.to_json()
    assert payload["queue_samples"] == 3
    assert payload["queue_p99_bytes"] == pytest.approx(sample.queue_p99)
    assert _cohort().to_json()["queue_p99_bytes"] is None


def test_service_feeds_cohorts_from_int_views():
    svc = Service(ServiceConfig(n_hosts=4, epoch_s=0.01, int_telemetry=True))
    result = svc.run(2)
    assert result["int"]["reports_ok"] > 0
    cohorts = result["epochs"][0]["cohorts"]["all"]
    assert cohorts["queue_samples"] > 0
    assert cohorts["queue_p99_bytes"] is not None
    # Epoch cursors advance: a later epoch is deltas, not the whole run.
    total = sum(e["cohorts"]["all"]["queue_samples"]
                for e in result["epochs"])
    assert total <= result["int"]["reports_ok"]


def test_service_without_int_grades_nothing():
    svc = Service(ServiceConfig(n_hosts=4, epoch_s=0.01))
    result = svc.run(1)
    assert result["int"] is None
    assert result["epochs"][0]["cohorts"]["all"]["queue_samples"] == 0
