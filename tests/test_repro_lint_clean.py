"""The source tree itself must be `repro-lint` clean.

This is the tier-1 twin of the CI step ``python -m repro.analysis lint
src/``: any new raw sequence comparison, ad-hoc RNG, wall-clock read,
timestamp equality or mutable default landing in ``src/repro`` fails
here with the full file:line report.
"""

import os

from repro.analysis import format_report, lint_paths

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src", "repro")


def test_source_tree_is_lint_clean():
    violations = lint_paths([SRC])
    assert violations == [], "\n" + format_report(violations)


def test_suppressions_in_tree_all_carry_reasons():
    # RL000 findings would already fail the test above; this documents
    # the intent explicitly: a bare `disable=` never lands in-tree.
    assert not [v for v in lint_paths([SRC]) if v.code == "RL000"]
