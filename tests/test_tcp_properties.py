"""Property-based tests of the transport's core invariant:

whatever the network does (bounded loss, duplication, reordering), every
byte the application wrote is delivered to the peer application exactly
once, in order.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import star
from repro.sim import Simulator
from repro.workloads.apps import Sink


class RandomLossInjector:
    """Drops a bounded random fraction of data packets (seeded)."""

    def __init__(self, drop_p, seed, max_drops=200):
        self.rng = random.Random(seed)
        self.drop_p = drop_p
        self.budget = max_drops

    def egress(self, pkt):
        if (pkt.payload_len > 0 and self.budget > 0
                and self.rng.random() < self.drop_p):
            self.budget -= 1
            return None
        return pkt

    def ingress(self, pkt):
        return pkt


class DuplicateInjector:
    """Duplicates some data packets (delivers an extra copy late)."""

    def __init__(self, host, every=7):
        self.host = host
        self.every = every
        self.count = 0

    def egress(self, pkt):
        self.count += 1
        if pkt.payload_len > 0 and self.count % self.every == 0:
            import copy
            clone = copy.copy(pkt)
            self.host.sim.schedule(50e-6, self.host.wire_out, clone)
        return pkt

    def ingress(self, pkt):
        return pkt


class ReorderInjector:
    """Delays every Nth data packet so it arrives behind its successors."""

    def __init__(self, host, every=11, delay=30e-6):
        self.host = host
        self.every = every
        self.delay = delay
        self.count = 0

    def egress(self, pkt):
        self.count += 1
        if pkt.payload_len > 0 and self.count % self.every == 0:
            self.host.sim.schedule(self.delay, self.host.wire_out, pkt)
            return None
        return pkt

    def ingress(self, pkt):
        return pkt


def run_transfer(injector_factory, nbytes, until=2.0):
    sim = Simulator()
    topo, hosts, _sw = star(sim, 2, mtu=1500, ecn_enabled=True)
    a, b = hosts
    a.attach_vswitch(injector_factory(a))
    delivered = []
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    # Track in-order delivery at the receiver.
    sim.run(until=0.005)
    server = next(iter(b.connections.values()))
    server.on_data = delivered.append
    conn.send(nbytes)
    conn.close()
    sim.run(until=until)
    return conn, server, sum(delivered)


@settings(max_examples=15, deadline=None)
@given(drop_p=st.floats(min_value=0.0, max_value=0.15),
       seed=st.integers(0, 1000),
       nbytes=st.integers(1, 120_000))
def test_exactly_once_in_order_delivery_under_loss(drop_p, seed, nbytes):
    conn, server, delivered = run_transfer(
        lambda h: RandomLossInjector(drop_p, seed), nbytes)
    assert delivered == nbytes
    assert server.bytes_delivered == nbytes
    assert conn.state == "CLOSED"


def test_delivery_under_duplication():
    conn, server, delivered = run_transfer(
        lambda h: DuplicateInjector(h), 100_000)
    assert delivered == 100_000  # duplicates never double-deliver


def test_delivery_under_reordering():
    conn, server, delivered = run_transfer(
        lambda h: ReorderInjector(h), 100_000)
    assert delivered == 100_000


def test_reordering_does_not_cause_timeouts():
    """Mild reordering is absorbed by the OOO queue / dupack threshold."""
    conn, _server, _ = run_transfer(
        lambda h: ReorderInjector(h, every=23, delay=10e-6), 200_000)
    assert conn.timeouts == 0


@pytest.mark.parametrize("cc", ["reno", "cubic", "vegas", "illinois",
                                "highspeed", "dctcp"])
def test_every_cc_survives_loss(cc):
    sim = Simulator()
    topo, hosts, _sw = star(sim, 2, mtu=1500, ecn_enabled=True)
    a, b = hosts
    a.attach_vswitch(RandomLossInjector(0.05, seed=hash(cc) % 100))
    Sink(b, 7000, cc=cc, ecn=(cc == "dctcp"))
    conn = a.connect(b.addr, 7000, cc=cc, ecn=(cc == "dctcp"))
    conn.send(150_000)
    sim.run(until=3.0)
    assert conn.bytes_acked_total == 150_000, cc
