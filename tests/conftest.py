"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.host import Host
from repro.net.topology import Topology, star
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def two_hosts(sim):
    """Two hosts on one switch, 10 GbE, 1.5 KB MTU, ECN marking on."""
    topo, hosts, switch = star(sim, 2, mtu=1500, ecn_enabled=True)
    return sim, topo, hosts[0], hosts[1], switch


@pytest.fixture
def three_hosts(sim):
    """Three hosts on one switch: two senders can congest the third's
    downlink (a two-host path is rate-matched and never queues)."""
    topo, hosts, switch = star(sim, 3, mtu=1500, ecn_enabled=True)
    return sim, topo, hosts[0], hosts[1], hosts[2], switch


@pytest.fixture
def two_hosts_jumbo(sim):
    """Two hosts on one switch, 10 GbE, 9 KB MTU, ECN marking on."""
    topo, hosts, switch = star(sim, 2, mtu=9000, ecn_enabled=True)
    return sim, topo, hosts[0], hosts[1], switch


class PacketTrap:
    """A terminal device that records everything it receives."""

    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


@pytest.fixture
def trap():
    return PacketTrap()


class FaultInjector:
    """A vSwitch-shaped filter for deterministic loss/inspection in tests.

    ``drop_egress``/``drop_ingress`` are predicates over (packet, index)
    where the index counts packets seen in that direction.  Dropped and
    passed packets are recorded.
    """

    def __init__(self, drop_egress=None, drop_ingress=None):
        self.drop_egress = drop_egress
        self.drop_ingress = drop_ingress
        self.egress_seen = []
        self.ingress_seen = []
        self.dropped = []

    def egress(self, packet):
        index = len(self.egress_seen)
        self.egress_seen.append(packet)
        if self.drop_egress is not None and self.drop_egress(packet, index):
            self.dropped.append(packet)
            return None
        return packet

    def ingress(self, packet):
        index = len(self.ingress_seen)
        self.ingress_seen.append(packet)
        if self.drop_ingress is not None and self.drop_ingress(packet, index):
            self.dropped.append(packet)
            return None
        return packet


def drain(sim, until=None):
    """Run the simulation to completion (or until a deadline)."""
    sim.run(until=until)
