"""Unit tests for the packet/header model."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    IP_HEADER,
    PACK_OPTION,
    TCP_HEADER,
    WSCALE_OPTION,
    Packet,
    PackOption,
    make_ack_packet,
    make_data_packet,
    mss_for_mtu,
)


def pkt(**kw):
    defaults = dict(src="a", dst="b", sport=1, dport=2)
    defaults.update(kw)
    return Packet(**defaults)


def test_mss_for_mtu():
    assert mss_for_mtu(1500) == 1460
    assert mss_for_mtu(9000) == 8960


def test_base_size_is_headers_only():
    assert pkt().size == IP_HEADER + TCP_HEADER


def test_size_includes_payload_and_options():
    p = pkt(payload_len=1000, wscale=9, pack=PackOption(10, 5))
    assert p.size == IP_HEADER + TCP_HEADER + WSCALE_OPTION + PACK_OPTION + 1000


def test_size_includes_sack_blocks():
    p = pkt(sack_blocks=((10, 20), (30, 40)))
    assert p.size == IP_HEADER + TCP_HEADER + 2 + 8 * 2


def test_end_seq():
    assert pkt(seq=100, payload_len=50).end_seq == 150


def test_flow_keys_are_mirrors():
    p = pkt(src="a", sport=1, dst="b", dport=2)
    assert p.flow_key() == ("a", 1, "b", 2)
    assert p.reverse_key() == ("b", 2, "a", 1)


def test_ecn_helpers():
    assert not pkt(ecn=ECN_NOT_ECT).ect
    assert pkt(ecn=ECN_ECT0).ect
    assert pkt(ecn=ECN_CE).ect
    assert pkt(ecn=ECN_CE).ce
    assert not pkt(ecn=ECN_ECT0).ce


def test_advertised_window_scaling():
    p = pkt(rwnd_field=100)
    assert p.advertised_window(0) == 100
    assert p.advertised_window(9) == 100 << 9


def test_set_advertised_window_rounds_up():
    p = pkt()
    p.set_advertised_window(1000, 9)
    # 1000/512 = 1.95 -> field 2 -> 1024 bytes: never smaller than asked.
    assert p.rwnd_field == 2
    assert p.advertised_window(9) >= 1000


def test_set_advertised_window_clamps_to_16_bits():
    p = pkt()
    p.set_advertised_window(1 << 40, 4)
    assert p.rwnd_field == 0xFFFF


def test_set_advertised_window_rejects_negative():
    with pytest.raises(ValueError):
        pkt().set_advertised_window(-1, 0)


def test_zero_window_encodable():
    p = pkt()
    p.set_advertised_window(0, 9)
    assert p.rwnd_field == 0
    assert p.advertised_window(9) == 0


@given(window=st.integers(min_value=0, max_value=1 << 24),
       wscale=st.integers(min_value=0, max_value=14))
def test_window_encoding_never_shrinks_and_bounded_error(window, wscale):
    """Round-tripping a window may round up by < one scale unit (until the
    16-bit field saturates), and must never round down."""
    p = Packet(src="a", dst="b", sport=1, dport=2)
    p.set_advertised_window(window, wscale)
    decoded = p.advertised_window(wscale)
    if p.rwnd_field < 0xFFFF:
        assert window <= decoded < window + (1 << wscale)
    else:
        assert decoded <= window or decoded == 0xFFFF << wscale


def test_packet_ids_unique():
    assert pkt().pid != pkt().pid


def test_make_data_packet():
    p = make_data_packet(("a", 1, "b", 2), seq=500, payload_len=100)
    assert p.flow_key() == ("a", 1, "b", 2)
    assert p.seq == 500 and p.payload_len == 100 and p.ack


def test_make_ack_packet_travels_reverse():
    p = make_ack_packet(("a", 1, "b", 2), ack_seq=600)
    assert p.src == "b" and p.dst == "a"
    assert p.ack_seq == 600 and p.payload_len == 0
