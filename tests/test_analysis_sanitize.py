"""Runtime invariant sanitizer tests (repro.analysis.sanitize).

Every probe is exercised twice: with a deliberately broken input it must
raise :class:`InvariantViolation` (carrying flow/time/seed diagnostics),
and on real, healthy datapath traffic it must stay silent.
"""

from types import SimpleNamespace

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    DatapathSanitizer,
    InvariantViolation,
    PortAccounting,
)
from repro.core import AcdcConfig, AcdcVswitch
from repro.net.buffer import SharedBuffer
from repro.net.packet import PackOption, Packet
from repro.sim.engine import SimulationError, Simulator
from repro.workloads.apps import Sink

KEY = ("10.0.0.1", 40000, "10.0.0.2", 7000)


@pytest.fixture(autouse=True)
def restore_sanitize_globals():
    """Every test leaves enablement and the run-seed as it found them."""
    yield
    sanitize.enable(None)
    sanitize.set_run_seed(None)


@pytest.fixture
def san():
    """A sanitizer on a minimal vswitch-shaped stand-in."""
    vswitch = SimpleNamespace(sim=Simulator(),
                              host=SimpleNamespace(addr="10.0.0.1"))
    return DatapathSanitizer(vswitch)


# ---------------------------------------------------------------------------
# Enablement plumbing
# ---------------------------------------------------------------------------
class TestEnablement:
    def test_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.is_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_env_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize.is_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_env_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert not sanitize.is_enabled()

    def test_enable_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitize.enable(False)
        assert not sanitize.is_enabled()
        sanitize.enable(None)  # back to the env
        assert sanitize.is_enabled()

    def test_datapath_off_by_default(self, two_hosts, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        _, _, a, _, _ = two_hosts
        assert AcdcVswitch(a).sanitizer is None

    def test_datapath_config_forces_on(self, two_hosts, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        _, _, a, _, _ = two_hosts
        vsw = AcdcVswitch(a, config=AcdcConfig(sanitize=True))
        assert vsw.sanitizer is not None

    def test_datapath_config_forces_off(self, two_hosts):
        sanitize.enable(True)
        _, _, a, _, _ = two_hosts
        vsw = AcdcVswitch(a, config=AcdcConfig(sanitize=False))
        assert vsw.sanitizer is None

    def test_violation_carries_run_seed(self, san):
        sanitize.set_run_seed(42)
        with pytest.raises(InvariantViolation) as exc:
            san.check_serial_progress(KEY, 100, 50, None, None)
        assert exc.value.seed == 42
        assert "seed=42" in str(exc.value)
        assert exc.value.flow == KEY


# ---------------------------------------------------------------------------
# Serial monotonicity (§3.1)
# ---------------------------------------------------------------------------
class TestSerialProgress:
    def test_una_retreat_fires(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_serial_progress(KEY, 1000, 999, None, None)
        assert exc.value.invariant == "snd-una-monotonic"

    def test_nxt_retreat_fires(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_serial_progress(KEY, None, None, 5000, 4000)
        assert exc.value.invariant == "snd-nxt-monotonic"

    def test_progress_across_wrap_is_clean(self, san):
        # 2^32 - 10 -> 5 is forward motion in serial order.
        san.check_serial_progress(KEY, (1 << 32) - 10, 5, None, None)

    def test_retreat_across_wrap_fires(self, san):
        with pytest.raises(InvariantViolation):
            san.check_serial_progress(KEY, 5, (1 << 32) - 10, None, None)

    def test_unknown_values_are_skipped(self, san):
        san.check_serial_progress(KEY, None, 100, 100, None)


# ---------------------------------------------------------------------------
# RWND encode -> decode fidelity (§3.3)
# ---------------------------------------------------------------------------
def ack(rwnd_field):
    return Packet(src=KEY[2], sport=KEY[3], dst=KEY[0], dport=KEY[1],
                  ack=True, ack_seq=1000, rwnd_field=rwnd_field)


class TestRewrite:
    @pytest.mark.parametrize("wscale", [0, 2, 7, 14])
    def test_faithful_rewrite_is_clean(self, san, wscale):
        for wnd in (0, 1, 1460, 65535, 70000, 1 << 22):
            pkt = ack(0xFFFF)
            pkt.set_advertised_window(wnd, wscale)
            san.check_rewrite(KEY, pkt, wnd, wscale, rewritten=True)

    def test_wrong_field_fires(self, san):
        pkt = ack(1)  # decodes to 4B under wscale 2, reference says 365
        with pytest.raises(InvariantViolation) as exc:
            san.check_rewrite(KEY, pkt, 1460, 2, rewritten=True)
        assert exc.value.invariant == "rwnd-roundtrip"

    def test_downward_lie_fires(self, san):
        # Field encodes less than requested although it was representable.
        pkt = ack(10)  # 10 << 0 = 10B, requested 1460B
        with pytest.raises(InvariantViolation):
            san.check_rewrite(KEY, pkt, 1460, 0, rewritten=True)

    def test_skip_with_loose_advert_fires(self, san):
        # Enforcer claims it left the ACK alone, but the original window
        # (65535B) is far looser than the enforced 1460B.
        pkt = ack(0xFFFF)
        with pytest.raises(InvariantViolation) as exc:
            san.check_rewrite(KEY, pkt, 1460, 0, rewritten=False)
        assert exc.value.invariant == "rwnd-enforce-skipped"

    def test_skip_with_tight_advert_is_clean(self, san):
        # Original advert (1000B) is already tighter than enforced 5000B.
        san.check_rewrite(KEY, ack(1000), 5000, 0, rewritten=False)

    def test_clamped_ceiling_is_clean(self, san):
        # 1 MB under wscale 0 clamps to 0xFFFF: legal (no upward lie fits).
        pkt = ack(0xFFFF)
        san.check_rewrite(KEY, pkt, 1 << 20, 0, rewritten=True)


class TestWindowValue:
    def test_negative_window_fires(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_window_value(KEY, -1, SimpleNamespace(max_wnd=None))
        assert exc.value.invariant == "cc-window-band"

    def test_above_ceiling_fires(self, san):
        with pytest.raises(InvariantViolation):
            san.check_window_value(KEY, 2_000_001,
                                   SimpleNamespace(max_wnd=2_000_000))

    def test_within_band_is_clean(self, san):
        san.check_window_value(KEY, 10_000, SimpleNamespace(max_wnd=2_000_000))


# ---------------------------------------------------------------------------
# Advertised-edge serial maximum
# ---------------------------------------------------------------------------
class TestAdvertisedEdge:
    def test_edge_is_serial_high_water(self, san):
        san.note_advertised_edge(KEY, 1000, 5000)   # edge 6000
        san.note_advertised_edge(KEY, 2000, 1000)   # edge 3000: keeps 6000
        assert san._edges[KEY] == 6000

    def test_edge_advances_across_wrap(self, san):
        san.note_advertised_edge(KEY, (1 << 32) - 100, 50)
        san.note_advertised_edge(KEY, (1 << 32) - 100, 200)
        assert san._edges[KEY] == 100  # wrapped past zero

    def test_guard_divergence_fires(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.note_advertised_edge(KEY, 1000, 5000, guard_edge=5999)
        assert exc.value.invariant == "advertised-edge"

    def test_guard_agreement_is_clean(self, san):
        san.note_advertised_edge(KEY, 1000, 5000, guard_edge=6000)

    def test_negative_window_fires(self, san):
        with pytest.raises(InvariantViolation):
            san.note_advertised_edge(KEY, 1000, -1)

    def test_forget_flow_resets_high_water(self, san):
        san.note_advertised_edge(KEY, 1000, 5000)
        san.forget_flow(KEY)
        # After a resurrection the edge restarts lower without tripping.
        san.note_advertised_edge(KEY, 10, 100)
        assert san._edges[KEY] == 110


# ---------------------------------------------------------------------------
# Feedback-channel consistency (§3.2)
# ---------------------------------------------------------------------------
class TestFeedback:
    def test_marked_above_total_fires(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_feedback_counters(KEY, 100, 200, "receiver counters")
        assert exc.value.invariant == "feedback-counters"

    def test_negative_counters_fire(self, san):
        with pytest.raises(InvariantViolation):
            san.check_feedback_counters(KEY, -1, 0, "receiver counters")

    def test_consume_above_receiver_high_water_fires(self, san):
        san.register_feedback_report(KEY, 1000, 100)
        with pytest.raises(InvariantViolation) as exc:
            san.check_feedback_consume(
                KEY, PackOption(total_bytes=2000, marked_bytes=100))
        assert exc.value.invariant == "feedback-conservation"

    def test_consume_within_high_water_is_clean(self, san):
        san.register_feedback_report(KEY, 1000, 100)
        san.check_feedback_consume(
            KEY, PackOption(total_bytes=1000, marked_bytes=100))

    def test_receiver_restart_reset_is_tolerated(self, san):
        # Counters legitimately regress after a receiver-vSwitch restart;
        # the registry keeps the high-water, lower reports are fine.
        san.register_feedback_report(KEY, 5000, 500)
        san.register_feedback_report(KEY, 100, 10)
        san.check_feedback_consume(
            KEY, PackOption(total_bytes=100, marked_bytes=10))

    def test_cross_vswitch_registry_is_shared_via_sim(self, san):
        other = DatapathSanitizer(SimpleNamespace(
            sim=san.sim, host=SimpleNamespace(addr="10.0.0.2")))
        other.register_feedback_report(KEY, 700, 70)
        san.check_feedback_consume(
            KEY, PackOption(total_bytes=700, marked_bytes=70))
        with pytest.raises(InvariantViolation):
            san.check_feedback_consume(
                KEY, PackOption(total_bytes=701, marked_bytes=70))

    def test_bad_deltas_fire(self, san):
        with pytest.raises(InvariantViolation) as exc:
            san.check_feedback_deltas(KEY, 100, 200)
        assert exc.value.invariant == "feedback-deltas"
        with pytest.raises(InvariantViolation):
            san.check_feedback_deltas(KEY, -1, 0)

    def test_good_deltas_are_clean(self, san):
        san.check_feedback_deltas(KEY, 100, 40)
        san.check_feedback_deltas(KEY, 0, 0)


# ---------------------------------------------------------------------------
# Switch byte conservation
# ---------------------------------------------------------------------------
class TestPortAccounting:
    def test_balanced_books_are_clean(self):
        sim = Simulator()
        shared = SharedBuffer(10_000)
        shared.register_queue(1)
        acct = PortAccounting("sw:1", 1)
        acct.on_offer(1500)
        shared.try_admit(1, 1500)
        acct.check(shared, sim)
        shared.release(1, 1500)
        acct.on_release(1500)
        acct.check(shared, sim)

    def test_leaked_bytes_fire(self):
        sim = Simulator()
        shared = SharedBuffer(10_000)
        shared.register_queue(1)
        acct = PortAccounting("sw:1", 1)
        acct.on_offer(1500)  # offered but never admitted nor dropped
        with pytest.raises(InvariantViolation) as exc:
            acct.check(shared, sim)
        assert exc.value.invariant == "switch-byte-conservation"

    def test_pool_mismatch_fires(self):
        sim = Simulator()
        shared = SharedBuffer(10_000)
        shared.register_queue(1)
        acct = PortAccounting("sw:1", 1)
        acct.on_offer(1500)
        shared.try_admit(1, 1500)
        shared.used += 7  # corrupt the pool ledger
        with pytest.raises(InvariantViolation):
            acct.check(shared, sim)


# ---------------------------------------------------------------------------
# Engine strict mode: no event behind the clock
# ---------------------------------------------------------------------------
class TestStrictEngine:
    def test_strict_catches_event_behind_clock(self):
        sim = Simulator(strict=True)
        sim.schedule_at(1.0, lambda: None)
        sim.now = 5.0  # simulated clock corruption
        with pytest.raises(SimulationError):
            sim.run()

    def test_strict_step_catches_it_too(self):
        sim = Simulator(strict=True)
        sim.schedule_at(1.0, lambda: None)
        sim.now = 5.0
        with pytest.raises(SimulationError):
            sim.step()

    def test_nonstrict_does_not_audit(self):
        sim = Simulator(strict=False)
        sim.schedule_at(1.0, lambda: None)
        sim.now = 5.0
        sim.run()  # silently processed (historical behaviour)

    def test_default_follows_enablement(self):
        sanitize.enable(True)
        assert Simulator()._strict
        sanitize.enable(False)
        assert not Simulator()._strict

    def test_scheduling_in_past_always_raises(self):
        sim = Simulator(strict=False)
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


# ---------------------------------------------------------------------------
# End to end: real traffic through a sanitized datapath
# ---------------------------------------------------------------------------
def sanitized_pair(two_hosts):
    sim, topo, a, b, sw = two_hosts
    cfg = AcdcConfig(sanitize=True)
    vsw_a = AcdcVswitch(a, config=cfg)
    vsw_b = AcdcVswitch(b, config=cfg)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    return sim, a, b, vsw_a, vsw_b


def test_clean_transfer_raises_nothing(two_hosts):
    sim, a, b, vsw_a, vsw_b = sanitized_pair(two_hosts)
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    sim.run(until=0.2)
    assert conn.bytes_acked_total == 500_000
    assert vsw_a.sanitizer is not None  # probes actually ran


def test_clean_transfer_with_wscale_and_restart(two_hosts):
    """Probes stay silent across the hard cases: window scaling active,
    plus a mid-flow vSwitch restart (counter resets, edge resets)."""
    sim, a, b, vsw_a, vsw_b = sanitized_pair(two_hosts)
    Sink(b, 7000, wscale=7)
    conn = a.connect(b.addr, 7000, wscale=7)
    conn.send_forever()
    sim.schedule(0.02, vsw_a.restart)
    sim.schedule(0.03, vsw_b.restart)
    sim.run(until=0.1)
    assert vsw_a.restarts == 1 and vsw_b.restarts == 1
    assert vsw_a.resurrections > 0
    assert conn.bytes_acked_total > 0


def test_lying_rewrite_caught_end_to_end(two_hosts, monkeypatch):
    """Inject a §3.3 bug — the enforcer writes a bogus window field — and
    the sanitizer must catch it on live traffic."""
    from repro.core.enforcement import WindowEnforcer

    def lying_enforce(self, pkt, window_bytes, wscale):
        pkt.rwnd_field = 1  # nowhere near the enforced window
        return True

    monkeypatch.setattr(WindowEnforcer, "enforce", lying_enforce)
    sim, a, b, vsw_a, vsw_b = sanitized_pair(two_hosts)
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    with pytest.raises(InvariantViolation) as exc:
        sim.run(until=0.2)
    assert exc.value.invariant == "rwnd-roundtrip"
    assert exc.value.sim_time is not None


def test_retreating_conntrack_caught_end_to_end(two_hosts, monkeypatch):
    """Inject a §3.1 bug — conntrack's snd_una jumps backwards — and the
    serial-monotonicity probe must catch it on live traffic."""
    from repro.core.conntrack import ConnTrack

    orig = ConnTrack.on_ingress_ack
    state = {"acks": 0}

    def retreating(self, pkt, now):
        verdict = orig(self, pkt, now)
        state["acks"] += 1
        if state["acks"] == 20 and self.snd_una is not None:
            self.snd_una = (self.snd_una - 100_000) % (1 << 32)
        return verdict

    monkeypatch.setattr(ConnTrack, "on_ingress_ack", retreating)
    sim, a, b, vsw_a, vsw_b = sanitized_pair(two_hosts)
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    with pytest.raises(InvariantViolation) as exc:
        sim.run(until=0.2)
    assert exc.value.invariant == "snd-una-monotonic"


# ---------------------------------------------------------------------------
# Violations land on the trace bus (schema and emit site locked together)
# ---------------------------------------------------------------------------
class _FakeFlight:
    """Flight-recorder stand-in: non-empty ring, deterministic dump path."""

    def __len__(self):
        return 3

    def dump(self, tag):
        return f"/tmp/flight-{tag}.jsonl"


class TestViolationTraceEvents:
    """`_fail` must emit `sanitizer.violation` (and `flight.dump` when a
    ring was dumped) on the vSwitch's trace bus before raising.

    The bus validates every emit against ``EVENT_SCHEMAS`` (validation
    is on by default), so this test locks the emit sites and the schema
    registrations together: drift in either direction raises here.
    """

    def _san(self, with_flight=False):
        from repro.obs.trace import TraceBus

        sim = Simulator()
        bus = TraceBus(sim)
        vswitch = SimpleNamespace(sim=sim,
                                  host=SimpleNamespace(addr="10.0.0.1"),
                                  trace=bus)
        if with_flight:
            vswitch.flight = _FakeFlight()
        return DatapathSanitizer(vswitch), bus

    def test_fail_emits_schema_valid_violation_event(self):
        san, bus = self._san()
        with pytest.raises(InvariantViolation):
            san._fail("snd-una-monotonic", "went backwards", flow=KEY)
        events = [e for e in bus.events if e.type == "sanitizer.violation"]
        assert len(events) == 1
        assert events[0].fields["invariant"] == "snd-una-monotonic"
        assert events[0].flow == KEY
        assert not [e for e in bus.events if e.type == "flight.dump"]

    def test_fail_emits_flight_dump_event_when_ring_dumped(self):
        san, bus = self._san(with_flight=True)
        with pytest.raises(InvariantViolation) as exc:
            san._fail("rwnd-roundtrip", "bad encode", flow=KEY)
        dumps = [e for e in bus.events if e.type == "flight.dump"]
        assert len(dumps) == 1
        assert dumps[0].fields["path"] == exc.value.flight_dump
        assert dumps[0].fields["invariant"] == "rwnd-roundtrip"

    def test_fail_without_trace_hook_stays_silent(self):
        # The zero-cost-off contract: no bus, no emission, same raise.
        sim = Simulator()
        vswitch = SimpleNamespace(sim=sim,
                                  host=SimpleNamespace(addr="10.0.0.1"))
        san = DatapathSanitizer(vswitch)
        with pytest.raises(InvariantViolation):
            san._fail("snd-una-monotonic", "went backwards", flow=KEY)
