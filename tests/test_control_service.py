"""Live policy migration on a running service: flows move, never restart."""

import pytest

from repro.control import Service, ServiceConfig


def running_service(**overrides):
    """A small service advanced one epoch so flow tables are populated."""
    defaults = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=400.0,
                    msg_sizes=[16_384, 65_536], msg_weights=[3, 1],
                    peers=2, seed=5)
    defaults.update(overrides)
    svc = Service(ServiceConfig(**defaults))
    svc.sim.run(until=0.01)
    return svc


def test_clamp_migrates_live_entries_without_restart():
    svc = running_service()
    vsw = svc.vswitches["h1"]
    assert vsw.table.entries, "the open-loop workload must create flows"
    ids_before = {key: id(entry) for key, entry in vsw.table.entries.items()}
    svc.control.submit({"epoch": 0, "op": "set_policy", "hosts": ["h1"],
                        "policy": {"max_rwnd": 2920}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied"
    assert outcome["migrated"] == len(ids_before)
    # Same entry objects — migrated in place, not dropped and re-learned.
    assert {key: id(entry)
            for key, entry in vsw.table.entries.items()} == ids_before
    for entry in vsw.table.entries.values():
        assert entry.policy.max_rwnd == 2920
        assert entry.vswitch_cc.max_wnd == 2920
        assert entry.enforced_wnd <= 2920
    assert vsw.restarts == 0 and vsw.resurrections == 0
    assert vsw.ops.snapshot()["flow_migrate"] == len(ids_before)


def test_clamp_is_enforced_on_subsequent_traffic():
    svc = running_service()
    svc.control.submit({"epoch": 0, "op": "set_policy",
                        "policy": {"max_rwnd": 1460}})
    svc.control.drain(0)
    svc.sim.run(until=0.03)
    for vsw in svc.vswitches.values():
        for entry in vsw.table.entries.values():
            assert entry.enforced_wnd <= 1460


def test_cc_swap_carries_operating_point():
    svc = running_service()
    vsw = svc.vswitches["h2"]
    old = {key: (entry.vswitch_cc, entry.vswitch_cc.wnd)
           for key, entry in vsw.table.entries.items()}
    svc.control.submit({"epoch": 0, "op": "set_policy", "hosts": ["h2"],
                        "policy": {"algorithm": "reno"}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied"
    for key, entry in vsw.table.entries.items():
        old_cc, old_wnd = old[key]
        cc = entry.vswitch_cc
        assert cc is not old_cc and cc.name == "reno"
        expected = min(max(old_wnd, float(cc.min_wnd)), float(cc.max_wnd))
        assert cc.wnd == pytest.approx(expected)
        assert cc.cuts == old_cc.cuts
        assert cc.loss_events == old_cc.loss_events
    # The migrated flows keep flowing under the new CC.
    svc.sim.run(until=0.03)
    assert svc.workload.recorder.completed()


def test_rollback_reopens_the_window():
    svc = running_service()
    svc.control.submit({"epoch": 0, "op": "set_policy",
                        "policy": {"max_rwnd": 1460}})
    svc.control.drain(0)
    svc.sim.run(until=0.02)
    svc.control.submit({"epoch": 1, "op": "set_policy", "policy": {}})
    svc.control.drain(1)
    # Loosening must raise the tracked operating point immediately, not
    # wait for the CC to regrow from the clamped value on its own.
    for vsw in svc.vswitches.values():
        for entry in vsw.table.entries.values():
            assert entry.policy.max_rwnd is None
            assert entry.vswitch_cc.max_wnd > 1460
    svc.sim.run(until=0.04)
    post = [r.fct for r in svc.workload.recorder.records
            if r.end is not None and r.end > 0.03]
    assert post, "flows recover after the clamp is lifted"


def test_unenforced_policy_migration():
    svc = running_service()
    vsw = svc.vswitches["h3"]
    n = len(vsw.table.entries)
    svc.control.submit({"epoch": 0, "op": "set_policy", "hosts": ["h3"],
                        "policy": {"algorithm": "none"}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied" and outcome["migrated"] == n
    for entry in vsw.table.entries.values():
        assert not entry.policy.enforced
    svc.sim.run(until=0.03)  # passthrough flows keep completing
    assert svc.workload.recorder.completed(label_prefix="h3>")


def test_guard_hot_reload_reaches_live_components():
    svc = running_service(guard=True)
    guard = svc.guards["h1"]
    assert guard.monitor is not None
    svc.control.submit({"epoch": 0, "op": "set_guard",
                        "params": {"suspect_violation_rate": 0.05,
                                   "violator_violation_rate": 0.1}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied"
    # Monitor and escalation read the same (mutated-in-place) config.
    assert guard.monitor.config.suspect_violation_rate == 0.05
    assert guard.escalation.config.violator_violation_rate == 0.1
    svc.sim.run(until=0.02)  # service keeps running under new thresholds


def test_epoch_reports_and_result_shape():
    svc = Service(ServiceConfig(n_hosts=4, epoch_s=0.01, seed=5,
                                arrival_rate_hz=400.0, peers=2),
                  schedule=[{"epoch": 0, "op": "set_policy",
                             "policy": {"beta": 0.9}}])
    result = svc.run(2)
    assert [r["epoch"] for r in result["epochs"]] == [0, 1]
    (cmd,) = result["epochs"][0]["commands"]
    assert cmd["status"] == "applied"
    assert result["canary"] == {"state": "idle"}
    assert set(result["policies"]) == {"h1", "h2", "h3", "h4"}
    assert all(p["beta"] == 0.9 for p in result["policies"].values())
    assert result["counters"]["migrations"] > 0
    assert result["counters"]["restarts"] == 0
    assert len(result["signature"]) == 64
