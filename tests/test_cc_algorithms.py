"""Unit tests for the pluggable congestion-control algorithms.

These drive the algorithm objects directly against a minimal connection
stub, checking the window *policy* math in isolation from the transport
mechanics (which the integration tests cover).
"""

import pytest

from repro.tcp.cc import available, make_cc, register
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.cubic import CUBIC_BETA, Cubic
from repro.tcp.cc.dctcp import DCTCP_G, Dctcp
from repro.tcp.cc.highspeed import HighSpeed, hstcp_alpha, hstcp_beta
from repro.tcp.cc.illinois import ALPHA_MAX, BETA_MAX, BETA_MIN, Illinois
from repro.tcp.cc.reno import Reno
from repro.tcp.cc.vegas import Vegas


class StubSim:
    def __init__(self):
        self.now = 0.0


class StubConn:
    """The slice of TcpConnection the CC modules touch."""

    def __init__(self, mss=1460, cwnd=None, ssthresh=(1 << 30)):
        self.sim = StubSim()
        self.mss = mss
        self.cwnd = cwnd if cwnd is not None else 10 * mss
        self.ssthresh = ssthresh
        self.max_cwnd = 1 << 30
        self.snd_una = 0
        self.snd_nxt = 0
        self.bytes_in_flight = 0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_contains_all_paper_stacks():
    assert {"cubic", "dctcp", "highspeed", "illinois", "reno", "vegas"} <= set(available())


def test_make_cc_unknown_raises():
    with pytest.raises(ValueError):
        make_cc("bbr", StubConn())


def test_register_custom():
    class Custom(CongestionControl):
        name = "custom-test"

    register("custom-test", Custom)
    assert isinstance(make_cc("custom-test", StubConn()), Custom)


# ---------------------------------------------------------------------------
# Reno / base
# ---------------------------------------------------------------------------
def test_reno_slow_start_doubles_per_window():
    conn = StubConn(cwnd=10 * 1460)
    cc = Reno(conn)
    cc.on_ack(10 * 1460, 0.001)  # one full window acked in slow start
    assert conn.cwnd == 20 * 1460


def test_reno_congestion_avoidance_one_mss_per_window():
    conn = StubConn(cwnd=100 * 1460, ssthresh=1460)
    cc = Reno(conn)
    start = conn.cwnd
    # Ack one full window in MSS chunks.
    for _ in range(100):
        cc.on_ack(1460, 0.001)
    growth = conn.cwnd - start
    assert 0.8 * 1460 <= growth <= 1.6 * 1460


def test_reno_halves_on_loss():
    conn = StubConn(cwnd=64 * 1460)
    cc = Reno(conn)
    assert cc.ssthresh_after_loss() == 32 * 1460


def test_reno_loss_floor_two_segments():
    conn = StubConn(cwnd=2 * 1460)
    cc = Reno(conn)
    assert cc.ssthresh_after_loss() == 2 * 1460


def test_base_respects_max_cwnd():
    conn = StubConn(cwnd=10 * 1460)
    conn.max_cwnd = 12 * 1460
    cc = Reno(conn)
    cc.on_ack(10 * 1460, 0.001)
    assert conn.cwnd == 12 * 1460


# ---------------------------------------------------------------------------
# CUBIC
# ---------------------------------------------------------------------------
def test_cubic_reduction_factor():
    conn = StubConn(cwnd=100 * 1460)
    cc = Cubic(conn)
    assert cc.ssthresh_after_loss() == int(100 * 1460 * CUBIC_BETA)


def test_cubic_fast_convergence_lowers_wmax():
    conn = StubConn(cwnd=100 * 1460)
    cc = Cubic(conn)
    cc.ssthresh_after_loss()
    first_wmax = cc.w_max
    conn.cwnd = 50 * 1460  # loss at a lower window than before
    cc.ssthresh_after_loss()
    assert cc.w_max < 50  # shrunk below the actual window (in MSS)
    assert first_wmax == 100


def test_cubic_concave_growth_toward_wmax():
    """After a loss, growth approaches W_max and flattens near it."""
    conn = StubConn(cwnd=70 * 1460, ssthresh=70 * 1460)
    cc = Cubic(conn)
    cc.w_max = 100.0
    rtt = 0.001
    sizes = []
    for step in range(60):
        conn.sim.now += rtt
        for _ in range(int(conn.cwnd / conn.mss)):
            cc.on_ack(conn.mss, rtt)
        sizes.append(conn.cwnd / conn.mss)
    # Strictly growing, and crosses the old W_max eventually.
    assert all(b >= a for a, b in zip(sizes, sizes[1:]))
    assert sizes[-1] > 100.0
    # Growth rate shrinks while approaching w_max (concave region).
    early = sizes[5] - sizes[0]
    # find index closest to w_max
    idx = min(range(len(sizes)), key=lambda i: abs(sizes[i] - 100.0))
    if 5 <= idx < len(sizes) - 5:
        late = sizes[idx + 2] - sizes[idx - 3]
        assert late < early


def test_cubic_slow_start_before_ssthresh():
    conn = StubConn(cwnd=10 * 1460, ssthresh=100 * 1460)
    cc = Cubic(conn)
    cc.on_ack(1460, 0.001)
    assert conn.cwnd == 11 * 1460


# ---------------------------------------------------------------------------
# DCTCP
# ---------------------------------------------------------------------------
def make_dctcp(cwnd_mss=50):
    conn = StubConn(cwnd=cwnd_mss * 1460, ssthresh=cwnd_mss * 1460)
    cc = Dctcp(conn)
    return conn, cc


def test_dctcp_alpha_decays_without_marks():
    conn, cc = make_dctcp()
    assert cc.alpha == 1.0
    for window in range(10):
        conn.snd_una += 50 * 1460
        conn.snd_nxt = conn.snd_una + 50 * 1460
        cc.on_ack_ecn_info(50 * 1460, marked=False)
    assert cc.alpha < 0.6  # EWMA decaying toward 0


def test_dctcp_alpha_converges_to_mark_fraction():
    conn, cc = make_dctcp()
    # 30% of bytes marked, for many windows.
    for window in range(200):
        conn.snd_una += 10 * 1460
        conn.snd_nxt = conn.snd_una + 10 * 1460
        cc.on_ack_ecn_info(7 * 1460, marked=False)
        cc.on_ack_ecn_info(3 * 1460, marked=True)
    assert 0.25 < cc.alpha < 0.35


def test_dctcp_proportional_cut_once_per_window():
    conn, cc = make_dctcp(cwnd_mss=100)
    cc.alpha = 0.4
    before = conn.cwnd
    assert cc.on_ecn_signal() is False  # handles its own reduction
    assert conn.cwnd == int(before * 0.8)  # (1 - alpha/2)
    mid = conn.cwnd
    cc.on_ecn_signal()   # same window: no second cut
    assert conn.cwnd == mid


def test_dctcp_cut_unlocks_next_window():
    conn, cc = make_dctcp(cwnd_mss=100)
    cc.alpha = 0.5
    cc.on_ecn_signal()
    first = conn.cwnd
    # Advance a window: alpha update re-arms the cut.
    conn.snd_una = cc.window_end + 1
    conn.snd_nxt = conn.snd_una + 10 * 1460
    cc.on_ack_ecn_info(10 * 1460, marked=True)
    cc.on_ecn_signal()
    assert conn.cwnd < first


def test_dctcp_loss_saturates_alpha():
    conn, cc = make_dctcp(cwnd_mss=100)
    cc.alpha = 0.1
    new_ssthresh = cc.ssthresh_after_loss()
    assert cc.alpha == 1.0
    assert new_ssthresh == max(int(100 * 1460 * 0.5), cc.min_cwnd())


def test_dctcp_min_cwnd_is_two_segments():
    conn, cc = make_dctcp()
    assert cc.min_cwnd() == 2 * 1460


def test_dctcp_configurable_floor():
    conn = StubConn()
    cc = Dctcp(conn, min_cwnd_mss=4)
    assert cc.min_cwnd() == 4 * 1460


# ---------------------------------------------------------------------------
# Vegas
# ---------------------------------------------------------------------------
def run_vegas_window(cc, conn, rtt, acked_mss=10):
    """Feed one window's worth of ACKs at a given RTT."""
    for _ in range(acked_mss):
        cc.on_ack(conn.mss, rtt)
    conn.snd_una = conn.snd_nxt
    conn.snd_nxt += acked_mss * conn.mss
    cc.on_ack(conn.mss, rtt)


def test_vegas_grows_when_below_alpha():
    conn = StubConn(cwnd=10 * 1460, ssthresh=1460)  # CA mode
    cc = Vegas(conn)
    conn.snd_nxt = 10 * 1460
    before = conn.cwnd
    # base == current RTT: diff = 0 < alpha -> grow
    run_vegas_window(cc, conn, 0.001)
    run_vegas_window(cc, conn, 0.001)
    assert conn.cwnd > before


def test_vegas_shrinks_when_backlog_large():
    conn = StubConn(cwnd=50 * 1460, ssthresh=1460)
    cc = Vegas(conn)
    conn.snd_nxt = 50 * 1460
    cc.base_rtt = 0.0001
    before = conn.cwnd
    # RTT 10x base: diff = cwnd * 0.9 >> beta -> shrink
    run_vegas_window(cc, conn, 0.001)
    run_vegas_window(cc, conn, 0.001)
    assert conn.cwnd < before


def test_vegas_tracks_min_base_rtt():
    conn = StubConn()
    cc = Vegas(conn)
    cc.on_ack(1460, 0.005)
    cc.on_ack(1460, 0.002)
    cc.on_ack(1460, 0.009)
    assert cc.base_rtt == 0.002


# ---------------------------------------------------------------------------
# Illinois
# ---------------------------------------------------------------------------
def test_illinois_alpha_max_when_no_delay():
    conn = StubConn(cwnd=50 * 1460, ssthresh=1460)
    cc = Illinois(conn)
    cc.base_rtt, cc.max_rtt = 0.001, 0.002
    cc.rtt_sum, cc.rtt_cnt = 0.001 * 5, 5   # avg == base: no queueing
    cc._update_params()
    assert cc.alpha == ALPHA_MAX


def test_illinois_alpha_min_when_delay_high():
    conn = StubConn(cwnd=50 * 1460, ssthresh=1460)
    cc = Illinois(conn)
    cc.base_rtt, cc.max_rtt = 0.001, 0.011
    cc.rtt_sum, cc.rtt_cnt = 0.011 * 5, 5   # avg == max: full queueing
    cc._update_params()
    assert cc.alpha == pytest.approx(0.3, abs=0.05)


def test_illinois_beta_ramps_with_delay():
    conn = StubConn(cwnd=50 * 1460, ssthresh=1460)
    cc = Illinois(conn)
    cc.base_rtt, cc.max_rtt = 0.001, 0.011
    cc.rtt_sum, cc.rtt_cnt = 0.0015 * 5, 5   # low delay
    cc._update_params()
    assert cc.beta == BETA_MIN
    cc.rtt_sum, cc.rtt_cnt = 0.0105 * 5, 5   # high delay
    cc._update_params()
    assert cc.beta == BETA_MAX


def test_illinois_small_window_acts_like_reno():
    conn = StubConn(cwnd=5 * 1460, ssthresh=1460)
    cc = Illinois(conn)
    cc.base_rtt, cc.max_rtt = 0.001, 0.011
    cc.rtt_sum, cc.rtt_cnt = 0.011 * 5, 5
    cc._update_params()
    assert cc.alpha == 1.0 and cc.beta == BETA_MAX


# ---------------------------------------------------------------------------
# HighSpeed
# ---------------------------------------------------------------------------
def test_hstcp_reno_region():
    assert hstcp_alpha(20) == 1.0
    assert hstcp_beta(20) == 0.5


def test_hstcp_alpha_grows_with_window():
    assert hstcp_alpha(100) > hstcp_alpha(50) > 1.0


def test_hstcp_beta_shrinks_with_window():
    assert hstcp_beta(83000) == pytest.approx(0.1, abs=1e-9)
    assert hstcp_beta(100) < 0.5


def test_hstcp_loss_reduction_gentler_at_scale():
    small = StubConn(cwnd=20 * 1460)
    big = StubConn(cwnd=1000 * 1460)
    small_cut = 1 - HighSpeed(small).ssthresh_after_loss() / small.cwnd
    big_cut = 1 - HighSpeed(big).ssthresh_after_loss() / big.cwnd
    assert big_cut < small_cut
