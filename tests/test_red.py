"""Unit tests for the WRED/ECN marking profile."""

import pytest

from repro.net.packet import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Packet
from repro.net.red import EcnMarker


def data_pkt(ecn):
    return Packet(src="a", dst="b", sport=1, dport=2, payload_len=100, ecn=ecn)


def test_below_threshold_untouched():
    marker = EcnMarker(threshold_bytes=1000)
    for ecn in (ECN_NOT_ECT, ECN_ECT0):
        p = data_pkt(ecn)
        decision = marker.decide(p, 999)
        assert not decision.drop and not decision.marked
        assert p.ecn == ecn


def test_at_exact_threshold_untouched():
    """DCTCP marks when the queue *exceeds* K: occupancy exactly K is a
    pass for both ECT and non-ECT packets (boundary regression — the old
    profile marked ECT arrivals at exactly K, one arrival early)."""
    marker = EcnMarker(threshold_bytes=1000)
    for ecn in (ECN_NOT_ECT, ECN_ECT0):
        p = data_pkt(ecn)
        decision = marker.decide(p, 1000)
        assert not decision.drop and not decision.marked
        assert p.ecn == ecn
    assert marker.marked_packets == 0 and marker.dropped_packets == 0


def test_nonect_at_exact_threshold_consumes_no_rng():
    """A queue parked at exactly K must not burn WRED RNG draws: the
    non-ECT stream after N at-K arrivals matches a fresh marker's."""
    a = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=3)
    b = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=3)
    for _ in range(100):
        a.decide(data_pkt(ECN_NOT_ECT), 1000)  # exactly K: no draw
    oa = [a.decide(data_pkt(ECN_NOT_ECT), 1500).drop for _ in range(50)]
    ob = [b.decide(data_pkt(ECN_NOT_ECT), 1500).drop for _ in range(50)]
    assert oa == ob


def test_ect_marked_above_threshold():
    marker = EcnMarker(threshold_bytes=1000)
    p = data_pkt(ECN_ECT0)
    decision = marker.decide(p, 1001)
    assert decision.marked and not decision.drop
    # The verdict alone neither stamps nor counts: the packet may still be
    # rejected by shared-buffer admission (mark-then-drop).
    assert p.ecn == ECN_ECT0
    assert marker.marked_packets == 0
    marker.commit_mark(p)
    assert p.ecn == ECN_CE
    assert marker.marked_packets == 1


def test_ce_stays_ce():
    marker = EcnMarker(threshold_bytes=1000)
    p = data_pkt(ECN_CE)
    decision = marker.decide(p, 5000)
    assert decision.marked and p.ecn == ECN_CE
    marker.commit_mark(p)
    assert p.ecn == ECN_CE


def test_nonect_dropped_above_ramp_top():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=1.25)
    p = data_pkt(ECN_NOT_ECT)
    decision = marker.decide(p, 1250)  # at/above ramp top: p = 1
    assert decision.drop
    assert marker.dropped_packets == 1


def test_nonect_drop_probability_ramps():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0)
    assert marker._nonect_drop_probability(999) == 0.0
    assert marker._nonect_drop_probability(1000) == 0.0
    assert marker._nonect_drop_probability(1500) == pytest.approx(0.5)
    assert marker._nonect_drop_probability(2000) == 1.0
    assert marker._nonect_drop_probability(9999) == 1.0


def test_nonect_drops_are_statistical_on_the_ramp():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=1)
    outcomes = [marker.decide(data_pkt(ECN_NOT_ECT), 1500).drop
                for _ in range(2000)]
    rate = sum(outcomes) / len(outcomes)
    assert 0.45 <= rate <= 0.55


def test_disabled_marker_never_touches():
    marker = EcnMarker(enabled=False, threshold_bytes=100)
    p = data_pkt(ECN_NOT_ECT)
    decision = marker.decide(p, 10_000_000)
    assert not decision.drop and not decision.marked


def test_invalid_construction():
    with pytest.raises(ValueError):
        EcnMarker(threshold_bytes=0)
    with pytest.raises(ValueError):
        EcnMarker(ramp_factor=0.5)


def test_deterministic_for_seed():
    a = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=9)
    b = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=9)
    oa = [a.decide(data_pkt(ECN_NOT_ECT), 1400).drop for _ in range(50)]
    ob = [b.decide(data_pkt(ECN_NOT_ECT), 1400).drop for _ in range(50)]
    assert oa == ob


# ---------------------------------------------------------------------------
# Batch (fluid-tier) form
# ---------------------------------------------------------------------------
def test_batch_matches_profile_boundaries():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0)
    at_k = marker.decide_batch(1000, ect_bytes=5000.0, nonect_bytes=5000.0)
    assert at_k.marked_bytes == 0.0 and at_k.dropped_bytes == 0.0
    above = marker.decide_batch(1500, ect_bytes=5000.0, nonect_bytes=4000.0)
    assert above.mark_fraction == 1.0
    assert above.marked_bytes == 5000.0
    assert above.drop_fraction == pytest.approx(0.5)
    assert above.dropped_bytes == pytest.approx(2000.0)


def test_batch_is_deterministic_and_counter_free():
    """Expected-value batch decisions: no RNG draws, no counter bumps."""
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=7)
    for _ in range(100):
        marker.decide_batch(1500, ect_bytes=1e6, nonect_bytes=1e6)
    assert marker.marked_packets == 0 and marker.dropped_packets == 0
    # The per-packet RNG stream is unperturbed by batch calls.
    fresh = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=7)
    oa = [marker.decide(data_pkt(ECN_NOT_ECT), 1500).drop for _ in range(50)]
    ob = [fresh.decide(data_pkt(ECN_NOT_ECT), 1500).drop for _ in range(50)]
    assert oa == ob


def test_batch_disabled_marker_is_inert():
    marker = EcnMarker(enabled=False, threshold_bytes=100)
    out = marker.decide_batch(10_000_000, ect_bytes=1e6, nonect_bytes=1e6)
    assert out.marked_bytes == 0.0 and out.dropped_bytes == 0.0


def test_fig15_coexistence_shape_regression():
    """Tier-1 pin of the Fig. 15/16 qualitative outputs after the
    threshold-boundary fix (mark strictly above K, not at K).

    The onset shift moves marking one arrival later, which does not
    change the coexistence story: under plain OVS with switch ECN on, a
    non-ECT CUBIC flow sharing the bottleneck with DCTCP starves
    (Fig. 15a), and AC/DC restores it to a fair share (Fig. 15b).  The
    full quantitative curves stay pinned in benchmarks/test_bench_fig15
    and _fig16, which pass unchanged under the fix.
    """
    from repro.experiments.fig15_16_ecn_coexistence import run

    out = run(duration=0.05, mtu=1500, seed=0)
    # Fig. 15a: the non-ECT flow is crushed well below fair share ...
    assert out["default"]["cubic_share"] < 0.15
    # ... while the DCTCP flow keeps the link busy,
    assert out["default"]["dctcp_gbps"] > 0.5
    # and the trap shows up as real loss on the CUBIC flow (Fig. 16).
    assert out["default"]["cubic_retransmits"] > 0
    # Fig. 15b: AC/DC makes both flows ECT on the wire; fair share back.
    assert 0.3 < out["acdc"]["cubic_share"] < 0.7
