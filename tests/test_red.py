"""Unit tests for the WRED/ECN marking profile."""

import pytest

from repro.net.packet import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Packet
from repro.net.red import EcnMarker


def data_pkt(ecn):
    return Packet(src="a", dst="b", sport=1, dport=2, payload_len=100, ecn=ecn)


def test_below_threshold_untouched():
    marker = EcnMarker(threshold_bytes=1000)
    for ecn in (ECN_NOT_ECT, ECN_ECT0):
        p = data_pkt(ecn)
        decision = marker.decide(p, 999)
        assert not decision.drop and not decision.marked
        assert p.ecn == ecn


def test_ect_marked_at_threshold():
    marker = EcnMarker(threshold_bytes=1000)
    p = data_pkt(ECN_ECT0)
    decision = marker.decide(p, 1000)
    assert decision.marked and not decision.drop
    # The verdict alone neither stamps nor counts: the packet may still be
    # rejected by shared-buffer admission (mark-then-drop).
    assert p.ecn == ECN_ECT0
    assert marker.marked_packets == 0
    marker.commit_mark(p)
    assert p.ecn == ECN_CE
    assert marker.marked_packets == 1


def test_ce_stays_ce():
    marker = EcnMarker(threshold_bytes=1000)
    p = data_pkt(ECN_CE)
    decision = marker.decide(p, 5000)
    assert decision.marked and p.ecn == ECN_CE
    marker.commit_mark(p)
    assert p.ecn == ECN_CE


def test_nonect_dropped_above_ramp_top():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=1.25)
    p = data_pkt(ECN_NOT_ECT)
    decision = marker.decide(p, 1250)  # at/above ramp top: p = 1
    assert decision.drop
    assert marker.dropped_packets == 1


def test_nonect_drop_probability_ramps():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0)
    assert marker._nonect_drop_probability(999) == 0.0
    assert marker._nonect_drop_probability(1000) == 0.0
    assert marker._nonect_drop_probability(1500) == pytest.approx(0.5)
    assert marker._nonect_drop_probability(2000) == 1.0
    assert marker._nonect_drop_probability(9999) == 1.0


def test_nonect_drops_are_statistical_on_the_ramp():
    marker = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=1)
    outcomes = [marker.decide(data_pkt(ECN_NOT_ECT), 1500).drop
                for _ in range(2000)]
    rate = sum(outcomes) / len(outcomes)
    assert 0.45 <= rate <= 0.55


def test_disabled_marker_never_touches():
    marker = EcnMarker(enabled=False, threshold_bytes=100)
    p = data_pkt(ECN_NOT_ECT)
    decision = marker.decide(p, 10_000_000)
    assert not decision.drop and not decision.marked


def test_invalid_construction():
    with pytest.raises(ValueError):
        EcnMarker(threshold_bytes=0)
    with pytest.raises(ValueError):
        EcnMarker(ramp_factor=0.5)


def test_deterministic_for_seed():
    a = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=9)
    b = EcnMarker(threshold_bytes=1000, ramp_factor=2.0, seed=9)
    oa = [a.decide(data_pkt(ECN_NOT_ECT), 1400).drop for _ in range(50)]
    ob = [b.decide(data_pkt(ECN_NOT_ECT), 1400).drop for _ in range(50)]
    assert oa == ob
