"""Game day: faults x adversarial tenant x sanitizer x pool runtime,
composed in one service run that must complete cleanly."""

from repro.experiments.gameday import gameday_cell, run
from repro.runtime import Runtime, is_cell_error


def test_gameday_completes_cleanly_and_deterministically():
    # Two seeds through the guarded pool runtime: the sanitizer is armed
    # inside each cell, so a datapath invariant violation would surface
    # as a quarantined cell_error here, not a silent pass.
    rt = Runtime(jobs=2, quarantine=True)
    result = run(quick=True, seeds=[0, 1], runtime=rt)
    assert rt.stats.quarantined == 0
    for per_seed in result["per_seed"]:
        assert not is_cell_error(per_seed)
        inner = per_seed["result"]
        # Chaos actually happened and the control plane actually acted.
        assert sum(inner["faults"].values()) > 0
        assert per_seed["commands_rejected"] == 1  # the malformed one
        assert per_seed["commands_applied"] == 3
        assert inner["config"]["sanitize"] is True
        assert inner["counters"]["completed"] > 0
        assert inner["canary"]["state"] == "rolled_back"
    # Stable event signature: a serial re-run of the same cell produces
    # the identical trace hash the pooled run produced.
    serial = gameday_cell(seed=0, epochs=4, n_hosts=4)
    assert serial["signature"] == result["per_seed"][0]["signature"]


def test_gameday_flows_survive_the_ordeal():
    cell = gameday_cell(seed=2, epochs=4, n_hosts=4)
    inner = cell["result"]
    # No wedge: a healthy majority of arrivals completed despite loss,
    # flaps, an RWND-ignoring tenant and two policy swings.
    assert inner["counters"]["completed"] >= \
        0.5 * inner["counters"]["arrivals"]
    # The kill switch left every host on last-known-good.
    assert all(p["max_rwnd"] is None for p in inner["policies"].values())
