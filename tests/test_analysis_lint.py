"""Self-tests for the `repro-lint` AST pass (repro.analysis).

Each rule gets a bad fixture it must fire on and a clean fixture it must
stay silent on; the suppression machinery, structural exemptions, report
format and CLI exit codes are covered too.
"""

import textwrap

import pytest

from repro.analysis import LintConfig, format_report, lint_source
from repro.analysis.__main__ import main as cli_main
from repro.analysis.rules import RULE_CATALOG


def lint(code, path="x.py", **cfg):
    return lint_source(textwrap.dedent(code), path=path,
                       config=LintConfig(**cfg))


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# RL001: raw sequence comparison / subtraction
# ---------------------------------------------------------------------------
class TestRL001:
    def test_ordered_comparison_fires(self):
        vs = lint("ok = pkt.seq < snd_una\n")
        assert codes(vs) == ["RL001"]

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_every_ordered_operator_fires(self, op):
        vs = lint(f"ok = snd_nxt {op} snd_una\n")
        assert codes(vs) == ["RL001"]

    def test_bare_subtraction_fires(self):
        vs = lint("outstanding = snd_nxt - snd_una\n")
        assert codes(vs) == ["RL001"]

    def test_attribute_chain_fires(self):
        vs = lint("gap = entry.conntrack.snd_nxt - base\n")
        assert codes(vs) == ["RL001"]

    def test_masked_subtraction_is_safe(self):
        vs = lint("outstanding = (snd_nxt - snd_una) & SEQ_MASK\n")
        assert vs == []

    def test_masked_with_extra_terms_is_safe(self):
        vs = lint("d = (snd_nxt - snd_una + offset) & SEQ_MASK\n")
        assert vs == []

    def test_equality_is_safe(self):
        # == / != are wrap-safe on sequence numbers.
        vs = lint("dup = pkt.ack_seq == snd_una\n")
        assert vs == []

    def test_all_caps_constants_are_safe(self):
        # SEQ_HALF / SEQ_MASK are the wrap-idiom *constants*, not state.
        vs = lint("wrapped = over >= SEQ_HALF\n")
        assert vs == []

    def test_serial_helper_call_is_safe(self):
        vs = lint("ok = seq_lt(pkt.ack_seq, snd_una)\n")
        assert vs == []

    def test_count_identifiers_are_safe(self):
        # Byte/event counters that merely contain "ack" never match.
        vs = lint("more = newly_acked - ack_count\n")
        assert vs == []

    def test_packet_module_is_structurally_exempt(self):
        bad = "delta = seq_a - seq_b\n"
        assert codes(lint(bad, path="src/repro/net/packet.py")) == []
        assert codes(lint(bad, path="src/repro/net/other.py")) == ["RL001"]


# ---------------------------------------------------------------------------
# RL002: nondeterministic RNG
# ---------------------------------------------------------------------------
class TestRL002:
    def test_module_level_call_fires(self):
        vs = lint("import random\nx = random.random()\n")
        assert codes(vs) == ["RL002"]

    def test_unseeded_random_fires(self):
        vs = lint("import random\nrng = random.Random()\n")
        assert codes(vs) == ["RL002"]

    def test_seeded_random_is_not_rl002(self):
        # Seeded construction is deterministic (no RL002) — but it still
        # bypasses the stream registry, which is RL006's domain.
        vs = lint("import random\nrng = random.Random(42)\n")
        assert codes(vs) == ["RL006"]

    def test_system_random_fires(self):
        vs = lint("import random\nrng = random.SystemRandom()\n")
        assert codes(vs) == ["RL002"]

    def test_from_import_function_fires(self):
        vs = lint("from random import choice\npick = choice(items)\n")
        assert codes(vs) == ["RL002"]

    def test_aliased_import_fires(self):
        vs = lint("import random as rnd\nx = rnd.shuffle(items)\n")
        assert codes(vs) == ["RL002"]

    def test_rng_registry_is_structurally_exempt(self):
        bad = "import random\nx = random.Random()\n"
        assert codes(lint(bad, path="src/repro/sim/rng.py")) == []

    def test_unrelated_module_attr_is_safe(self):
        # `random` methods on some other object never match.
        vs = lint("x = numpy.random()\n")
        assert vs == []


# ---------------------------------------------------------------------------
# RL003: wall-clock access
# ---------------------------------------------------------------------------
class TestRL003:
    @pytest.mark.parametrize("call", ["time.time()", "time.monotonic()",
                                      "time.perf_counter()",
                                      "time.time_ns()"])
    def test_time_module_calls_fire(self, call):
        vs = lint(f"import time\nt = {call}\n")
        assert codes(vs) == ["RL003"]

    def test_datetime_now_fires(self):
        vs = lint("import datetime\nt = datetime.datetime.now()\n")
        assert codes(vs) == ["RL003"]

    def test_from_datetime_import_fires(self):
        vs = lint("from datetime import datetime\nt = datetime.utcnow()\n")
        assert codes(vs) == ["RL003"]

    def test_from_time_import_fires(self):
        vs = lint("from time import monotonic\nt = monotonic()\n")
        assert codes(vs) == ["RL003"]

    def test_time_sleep_is_safe(self):
        # Only the clock reads are flagged, not every `time.` attribute.
        vs = lint("import time\ntime.sleep(1)\n")
        assert vs == []

    def test_engine_clock_is_safe(self):
        vs = lint("t = sim.now\n")
        assert vs == []


# ---------------------------------------------------------------------------
# RL004: exact equality between sim timestamps
# ---------------------------------------------------------------------------
class TestRL004:
    def test_two_timestamps_fire(self):
        vs = lint("same = fire_at == sim.now\n")
        assert codes(vs) == ["RL004"]

    def test_not_equal_fires(self):
        vs = lint("moved = start_time != stop_time\n")
        assert codes(vs) == ["RL004"]

    def test_one_sided_is_safe(self):
        # Comparing a timestamp against a constant (0.0 sentinel) is fine.
        vs = lint("fresh = sim.now == 0.0\n")
        assert vs == []

    def test_ordering_is_safe(self):
        vs = lint("due = fire_at <= sim.now\n")
        assert vs == []


# ---------------------------------------------------------------------------
# RL005: mutable default arguments
# ---------------------------------------------------------------------------
class TestRL005:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "list()",
                                         "dict()", "[x for x in y]"])
    def test_mutable_defaults_fire(self, default):
        vs = lint(f"def f(a, b={default}):\n    pass\n")
        assert codes(vs) == ["RL005"]

    def test_kwonly_default_fires(self):
        vs = lint("def f(*, b=[]):\n    pass\n")
        assert codes(vs) == ["RL005"]

    def test_lambda_default_fires(self):
        vs = lint("f = lambda a=[]: a\n")
        assert codes(vs) == ["RL005"]

    def test_immutable_defaults_are_safe(self):
        vs = lint("def f(a=None, b=(), c=0, d='x'):\n    pass\n")
        assert vs == []


# ---------------------------------------------------------------------------
# RL006: non-snapshot-safe state
# ---------------------------------------------------------------------------
class TestRL006:
    @pytest.mark.parametrize("value", ["{}", "[]", "set()", "dict()",
                                       "deque()", "itertools.count(1)"])
    def test_module_level_registry_fires(self, value):
        vs = lint(f"_registry = {value}\n")
        assert codes(vs) == ["RL006"]

    def test_annotated_registry_fires(self):
        vs = lint("_seen: dict = {}\n")
        assert codes(vs) == ["RL006"]

    def test_all_caps_constant_is_safe(self):
        # Configuration-by-convention: read-only module constants.
        vs = lint("EVENT_SCHEMAS = {'a': 1}\n")
        assert vs == []

    def test_dunder_is_safe(self):
        vs = lint("__all__ = ['x']\n")
        assert vs == []

    def test_class_and_function_scope_are_safe(self):
        # Instance/class containers are reachable from the object graph a
        # snapshot pickles; only module scope escapes it.
        vs = lint("class C:\n"
                  "    registry = {}\n"
                  "    def f(self):\n"
                  "        local = {}\n"
                  "        return local\n")
        assert vs == []

    def test_global_statement_fires(self):
        vs = lint("_serial = 0\n"
                  "def bump():\n"
                  "    global _serial\n"
                  "    _serial += 1\n")
        assert codes(vs) == ["RL006"]

    def test_seeded_random_construction_fires(self):
        vs = lint("import random\nrng = random.Random(seed)\n")
        assert codes(vs) == ["RL006"]

    def test_from_import_random_construction_fires(self):
        vs = lint("from random import Random\nrng = Random(7)\n")
        assert codes(vs) == ["RL006"]

    def test_from_import_unseeded_is_rl002(self):
        vs = lint("from random import Random\nrng = Random()\n")
        assert codes(vs) == ["RL002"]

    def test_rng_registry_is_structurally_exempt(self):
        bad = ("import random\n"
               "rng = random.Random(42)\n"
               "_streams = {}\n")
        assert codes(lint(bad, path="src/repro/sim/rng.py")) == []
        assert codes(lint(bad, path="src/repro/sim/other.py")) == [
            "RL006", "RL006"]

    def test_suppression_with_reason(self):
        vs = lint("_ids = itertools.count(1)"
                  "  # repro-lint: disable=RL006 (debug label, never state)\n")
        assert vs == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
class TestSuppression:
    BAD = "ahead = snd_nxt - snd_una"

    def test_inline_with_reason_suppresses(self):
        vs = lint(f"{self.BAD}  # repro-lint: disable=RL001 (test fixture)\n")
        assert vs == []

    def test_standalone_line_above_suppresses(self):
        vs = lint("# repro-lint: disable=RL001 (test fixture)\n"
                  f"{self.BAD}\n")
        assert vs == []

    def test_reason_is_required(self):
        vs = lint(f"{self.BAD}  # repro-lint: disable=RL001\n")
        # The disable is ignored AND itself reported.
        assert sorted(codes(vs)) == ["RL000", "RL001"]

    def test_file_level_suppresses_everywhere(self):
        vs = lint("# repro-lint: disable-file=RL001 (linear space here)\n"
                  f"{self.BAD}\n"
                  f"{self.BAD}\n")
        assert vs == []

    def test_suppression_is_code_specific(self):
        vs = lint(f"{self.BAD}  # repro-lint: disable=RL003 (wrong code)\n")
        assert codes(vs) == ["RL001"]

    def test_multiple_codes_one_comment(self):
        src = ("import time\n"
               "t = time.time() - snd_una"
               "  # repro-lint: disable=RL001,RL003 (fixture)\n")
        assert lint(src) == []


# ---------------------------------------------------------------------------
# Config, parse errors, report, CLI
# ---------------------------------------------------------------------------
def test_select_restricts_rules():
    src = "import random\nx = random.random()\nd = snd_nxt - snd_una\n"
    assert codes(lint(src, select=("RL002",))) == ["RL002"]
    assert codes(lint(src, select=("RL001",))) == ["RL001"]


def test_parse_error_reported_as_rl999():
    vs = lint("def broken(:\n")
    assert codes(vs) == ["RL999"]


def test_report_is_sorted_and_stable():
    src = ("import random\n"
           "d = snd_nxt - snd_una\n"
           "x = random.random()\n")
    report = format_report(lint(src, path="pkg/mod.py"))
    lines = report.splitlines()
    assert lines[0].startswith("pkg/mod.py:2:")
    assert "RL001" in lines[0]
    assert lines[1].startswith("pkg/mod.py:3:")
    assert "RL002" in lines[1]
    assert lines[-1] == "repro-lint: 2 violations"
    # Deterministic across invocations.
    assert report == format_report(lint(src, path="pkg/mod.py"))


def test_report_singular_summary():
    report = format_report(lint("d = snd_nxt - snd_una\n"))
    assert report.splitlines()[-1] == "repro-lint: 1 violation"


def test_report_empty():
    assert format_report([]) == "repro-lint: 0 violations"


def test_rule_catalog_covers_all_emitted_codes():
    assert set(RULE_CATALOG) == {
        "RL000", "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        "RL999"}


class TestCli:
    def write(self, tmp_path, name, body):
        path = tmp_path / name
        path.write_text(textwrap.dedent(body))
        return str(path)

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path, "ok.py", "x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one_sorted(self, tmp_path, capsys):
        self.write(tmp_path, "b.py", "d = snd_nxt - snd_una\n")
        self.write(tmp_path, "a.py", "import random\nx = random.random()\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out.splitlines()
        # a.py before b.py: the report is file:line sorted.
        assert "a.py" in out[0] and "RL002" in out[0]
        assert "b.py" in out[1] and "RL001" in out[1]
        assert out[-1] == "repro-lint: 2 violations"

    def test_unknown_rule_exits_two(self, tmp_path):
        self.write(tmp_path, "ok.py", "x = 1\n")
        assert cli_main(["lint", "--select", "RL777", str(tmp_path)]) == 2

    def test_no_subcommand_exits_two(self, capsys):
        assert cli_main([]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CATALOG:
            assert code in out

    def test_select_filters(self, tmp_path, capsys):
        self.write(tmp_path, "m.py",
                   "import random\nx = random.random()\n"
                   "d = snd_nxt - snd_una\n")
        assert cli_main(["lint", "--select", "RL001", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "RL002" not in out
