"""Guest TCP: ECN signalling behaviour (classic and DCTCP-style).

These use the three-host star so the receiver's downlink actually marks.
"""

import pytest

from repro.workloads.apps import Sink


def congested_pair(three_hosts, cc, ecn=True):
    """Two flows with stack `cc` into one receiver; returns the conns."""
    sim, topo, a, b, c, sw = three_hosts
    opts = {"cc": cc, "ecn": ecn}
    Sink(c, 7000, **opts)
    conns = []
    for src in (a, b):
        conn = src.connect(c.addr, 7000, **opts)
        conn.send_forever()
        conns.append(conn)
    return sim, conns, sw


def test_classic_ecn_reduces_instead_of_dropping(three_hosts):
    sim, conns, sw = congested_pair(three_hosts, "cubic")
    sim.run(until=0.1)
    assert sw.marker.marked_packets > 0
    # The flows reacted to ECE (ecn_reduce_point advanced) without loss.
    for conn in conns:
        assert conn.ecn_reduce_point > 0
        assert conn.timeouts == 0
    assert sw.total_drops() == 0


def test_classic_ecn_keeps_queue_near_threshold(three_hosts):
    sim, conns, sw = congested_pair(three_hosts, "cubic")
    sim.run(until=0.1)
    # Queue bounded well below the CUBIC no-ECN buffer fill.
    assert sw.shared.used < 4 * sw.marker.threshold


def test_dctcp_guest_alpha_reflects_marking(three_hosts):
    sim, conns, sw = congested_pair(three_hosts, "dctcp")
    sim.run(until=0.2)
    for conn in conns:
        # Persistent threshold marking: alpha settles away from 0 and 1.
        assert 0.05 < conn.cc.alpha < 0.9


def test_dctcp_throughput_beats_classic_ecn_cubic(three_hosts):
    """Proportional backoff wastes less capacity than halving."""
    sim, conns, sw = congested_pair(three_hosts, "dctcp")
    sim.run(until=0.2)
    total = sum(c.bytes_acked_total for c in conns) * 8 / 0.2
    assert total > 8.5e9


def test_no_ecn_stack_fills_buffer_and_drops(three_hosts):
    sim, topo, a, b, c, sw = three_hosts
    sw.marker.enabled = False  # CUBIC baseline: WRED/ECN off
    opts = {"cc": "cubic", "ecn": False}
    Sink(c, 7000, **opts)
    for src in (a, b):
        conn = src.connect(c.addr, 7000, **opts)
        conn.send_forever()
    sim.run(until=0.1)
    assert sw.total_drops() > 0
    assert sw.shared.used > 10 * sw.marker.threshold


def test_cwr_clears_classic_echo(two_hosts):
    """Receiver latches ECE until it sees CWR from the sender."""
    sim, topo, a, b, _sw = two_hosts
    from repro.net.packet import ECN_CE, Packet
    accepted = []
    b.listen(7000, on_accept=lambda cn: accepted.append(cn), ecn=True)
    conn = a.connect(b.addr, 7000, ecn=True)
    conn.send(100_000)
    sim.run(until=0.05)
    server = accepted[0]
    # Force a CE mark as if the switch marked one data packet.
    pkt = Packet(src=a.addr, dst=b.addr, sport=conn.lport, dport=7000,
                 seq=conn.snd_nxt, payload_len=0, ack=True, ecn=ECN_CE)
    server.ece_latched = True  # as after receiving CE data
    assert server.ece_latched
    # Sender reduces and announces CWR on its next data packet, which
    # clears the latch at the receiver.
    conn._cwr_pending = True
    conn.send(1460)
    sim.run(until=0.1)
    assert not server.ece_latched
