"""Unit tests for the flow-size distributions (Fig. 23 workloads)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.workloads.traces import (
    DATA_MINING_CDF,
    WEB_SEARCH_CDF,
    FlowSizeDistribution,
    data_mining,
    web_search,
)


def test_published_cdfs_are_wellformed():
    for cdf in (WEB_SEARCH_CDF, DATA_MINING_CDF):
        sizes = [s for s, _ in cdf]
        probs = [p for _, p in cdf]
        assert sizes == sorted(sizes)
        assert probs == sorted(probs)
        assert probs[0] == 0.0 and probs[-1] == 1.0


def test_quantile_endpoints():
    dist = web_search()
    assert dist.quantile(0.0) == 1_000
    assert dist.quantile(1.0) == 20_000_000


def test_quantile_monotone():
    dist = data_mining()
    values = [dist.quantile(u / 20) for u in range(21)]
    assert values == sorted(values)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_quantile_within_support(u):
    dist = web_search()
    assert 1_000 <= dist.quantile(u) <= 20_000_000


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        web_search().quantile(1.5)


def test_scale_shrinks_proportionally():
    full = web_search()
    tenth = web_search(scale=0.1)
    assert tenth.quantile(0.5) == pytest.approx(full.quantile(0.5) * 0.1,
                                                rel=0.01)


def test_cap_truncates_tail_only():
    capped = web_search(max_bytes=100_000)
    assert capped.quantile(1.0) == 100_000
    # The mice region is untouched by the cap.
    assert capped.quantile(0.3) == web_search().quantile(0.3)


def test_sampling_is_deterministic_per_seed():
    dist = data_mining()
    a = [dist.sample(random.Random(5)) for _ in range(1)]
    b = [dist.sample(random.Random(5)) for _ in range(1)]
    assert a == b


def test_sample_distribution_matches_cdf():
    """Half of data-mining flows are <= ~1 KB (its defining property)."""
    dist = data_mining()
    rng = random.Random(11)
    samples = [dist.sample(rng) for _ in range(5000)]
    small = sum(1 for s in samples if s <= 1_100)
    assert 0.45 <= small / len(samples) <= 0.55


def test_data_mining_tail_heavier_than_web_search():
    assert data_mining().quantile(0.999) > web_search().quantile(0.999)


def test_mean_estimate_reasonable():
    mean = web_search().mean_estimate(samples=5000)
    # Web-search mean is dominated by the elephant tail: O(1 MB).
    assert 100_000 < mean < 5_000_000


def test_custom_cdf_validation():
    with pytest.raises(ValueError):
        FlowSizeDistribution([(100, 0.0)])                 # too few points
    with pytest.raises(ValueError):
        FlowSizeDistribution([(100, 0.2), (200, 1.0)])     # no p=0
    with pytest.raises(ValueError):
        FlowSizeDistribution([(200, 0.0), (100, 1.0)])     # unsorted sizes
    with pytest.raises(ValueError):
        FlowSizeDistribution([(100, 0.0), (200, 1.0)], scale=0)
