"""Unit tests for the dependency-free metric registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricRegistry
from repro.obs.metrics import Counter, Gauge, Histogram, pow2_bounds


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------
def test_counter_increments_and_snapshots():
    c = Counter("packets")
    c.inc()
    c.inc(41)
    assert c.value == 42
    assert c.snapshot() == {"type": "counter", "value": 42}
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_sets_latest_value():
    g = Gauge("queue_depth")
    g.set(10)
    g.set(3)
    assert g.snapshot() == {"type": "gauge", "value": 3}


def test_histogram_bucket_edges_are_upper_inclusive():
    h = Histogram("lat", bounds=[10, 100, 1000])
    for v in (5, 10, 11, 100, 999, 1000, 1001):
        h.record(v)
    snap = h.snapshot()
    # <=10 | <=100 | <=1000 | overflow
    assert snap["counts"] == [2, 2, 2, 1]
    assert snap["count"] == 7 and snap["sum"] == sum((5, 10, 11, 100,
                                                      999, 1000, 1001))
    assert snap["min"] == 5 and snap["max"] == 1001
    assert snap["bounds"] == [10, 100, 1000]


def test_histogram_requires_increasing_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[10, 10])
    with pytest.raises(ValueError):
        Histogram("bad", bounds=[])


def test_pow2_bounds():
    assert pow2_bounds(1500, 4) == (1500, 3000, 6000, 12000)
    with pytest.raises(ValueError):
        pow2_bounds(0, 4)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_get_or_create_is_idempotent():
    reg = MetricRegistry()
    a = reg.counter("x")
    b = reg.counter("x")
    assert a is b and len(reg) == 1
    with pytest.raises(ValueError):
        reg.gauge("x")  # same name, different kind


def test_registry_rejects_source_metric_name_clash():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.source("x", lambda: 1)
    reg.source("y", lambda: 1)
    with pytest.raises(ValueError):
        reg.counter("y")


def test_snapshot_flattens_sources_and_sorts_names():
    reg = MetricRegistry()
    reg.counter("zeta").inc(7)
    reg.source("alpha", lambda: {"b": 2, "a": 1})
    reg.source("scalar", lambda: 3.5)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["alpha.a"] == 1 and snap["alpha.b"] == 2
    assert snap["scalar"] == 3.5
    assert snap["zeta"] == {"type": "counter", "value": 7}


def test_snapshot_reads_sources_live():
    reg = MetricRegistry()
    state = {"n": 0}
    reg.source("live", lambda: state["n"])
    assert reg.snapshot()["live"] == 0
    state["n"] = 9
    assert reg.snapshot()["live"] == 9


def test_contains():
    reg = MetricRegistry()
    reg.gauge("present")
    assert "present" in reg and "absent" not in reg
