"""Unit/integration tests for the workload applications."""

import pytest

from repro.metrics import FctRecorder, RttRecorder
from repro.workloads.apps import (
    BulkSender,
    EchoSink,
    MessageStream,
    PingPong,
    Sink,
)


def test_sink_counts_all_connections(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    sink = Sink(b, 7000)
    for _ in range(3):
        conn = a.connect(b.addr, 7000)
        conn.send(1000)
    sim.run(until=0.1)
    assert sink.bytes_received == 3000


def test_sink_register_for_routes_deliveries(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    sink = Sink(b, 7000)
    got = []
    conn = a.connect(b.addr, 7000)
    sink.register_for(conn, got.append)
    other = a.connect(b.addr, 7000)
    conn.send(5000)
    other.send(700)
    sim.run(until=0.1)
    assert sum(got) == 5000  # only the registered connection's bytes


def test_echo_sink_responds_per_full_request(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    EchoSink(b, 7000, msg_bytes=100)
    got = []
    conn = a.connect(b.addr, 7000)
    conn.on_data = got.append
    conn.send(250)  # 2.5 requests: only 2 echoes
    sim.run(until=0.1)
    assert sum(got) == 200


def test_pingpong_measures_plausible_rtt(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = RttRecorder()
    EchoSink(b, 7000)
    PingPong(sim, a, b.addr, 7000, rec, interval_s=0.001)
    sim.run(until=0.1)
    assert len(rec.samples) > 50
    # Uncongested path: RTT is tens of microseconds.
    assert all(1e-6 < s < 1e-3 for s in rec.samples)


def test_pingpong_warmup_delays_first_sample(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = RttRecorder()
    EchoSink(b, 7000)
    PingPong(sim, a, b.addr, 7000, rec, interval_s=0.001, warmup_s=0.05)
    sim.run(until=0.04)
    assert not rec.samples
    sim.run(until=0.1)
    assert rec.samples


def test_pingpong_pipelined_mode_keeps_sampling(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = RttRecorder()
    EchoSink(b, 7000)
    PingPong(sim, a, b.addr, 7000, rec, interval_s=0.005, pipelined=True)
    sim.run(until=0.1)
    # ~20 requests sent on schedule regardless of responses.
    assert len(rec.samples) >= 15


def test_message_stream_fct_single(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)
    stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="m")
    stream.send_message(50_000)
    sim.run(until=0.1)
    records = rec.completed("m")
    assert len(records) == 1
    assert 0 < records[0].fct < 0.01


def test_message_stream_overlapping_messages(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)
    stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="m")
    for _ in range(5):
        stream.send_message(10_000)
    sim.run(until=0.1)
    fcts = rec.fcts("m")
    assert len(fcts) == 5
    # Later messages waited behind earlier ones: non-decreasing FCTs.
    assert fcts == sorted(fcts)


def test_message_stream_sequential(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)
    stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="seq")
    stream.send_sequential([10_000, 20_000, 30_000])
    sim.run(until=0.2)
    records = rec.completed("seq")
    assert [r.size_bytes for r in records] == [10_000, 20_000, 30_000]
    # Strictly ordered starts: each begins after the previous completes.
    for earlier, later in zip(records, records[1:]):
        assert later.start >= earlier.end


def test_message_stream_send_every(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)
    stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="tick")
    sim.schedule_at(0.0, lambda: stream.send_every(1000, 0.01, until=0.055))
    sim.run(until=0.2)
    assert len(rec.completed("tick")) == 6  # t = 0,10,...,50 ms


def test_message_stream_mid_run_construction(two_hosts):
    """Streams created while the clock is running must work (shuffle)."""
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)

    def later():
        stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="late")
        stream.send_message(1000)

    sim.schedule(0.05, later)
    sim.run(until=0.2)
    assert len(rec.completed("late")) == 1


def test_message_stream_rejects_empty_message(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    rec = FctRecorder()
    sink = Sink(b, 7000)
    stream = MessageStream(sim, a, b.addr, 7000, sink, rec, label="m")
    with pytest.raises(ValueError):
        stream.send_message(0)


def test_bulk_sender_on_start_hook(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000)
    seen = []
    BulkSender(sim, a, b.addr, 7000, size_bytes=1000,
               on_start=lambda f: seen.append(f.conn))
    sim.run(until=0.05)
    assert len(seen) == 1 and seen[0] is not None
