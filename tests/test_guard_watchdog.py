"""Unit tests for the datapath watchdog (repro.guard.watchdog).

The watchdog only reads ``vswitch.sim``, ``vswitch.ops`` and
``vswitch.table``, so a minimal fake vSwitch suffices — ticks are driven
by running the real simulator clock.
"""

from repro.core import FlowPolicy
from repro.core.ops import OpsCounter
from repro.guard import DatapathWatchdog, GuardConfig
from repro.sim import Simulator


class FakeEntry:
    def __init__(self, key, beta=1.0, enforced=True):
        self.key = key
        self.policy = FlowPolicy(algorithm="dctcp" if enforced else "none",
                                 beta=beta)
        self.shed = False


class FakeVswitch:
    def __init__(self, sim):
        self.sim = sim
        self.ops = OpsCounter()
        self.table = []


def make(sim, entries, **over):
    over.setdefault("shed_step_fraction", 0.5)
    over.setdefault("resume_fraction", 0.5)
    cfg = GuardConfig(watchdog_interval_s=0.01, **over)
    vswitch = FakeVswitch(sim)
    vswitch.table = entries
    events = []

    def notify(kind, entry, **detail):
        events.append((kind, entry.key, detail))

    wd = DatapathWatchdog(cfg, vswitch, notify)
    wd.start()
    return wd, vswitch, events


def tick(sim, n=1):
    sim.run(until=sim.now + n * 0.01 + 1e-6)


def test_no_budgets_never_sheds(sim):
    entries = [FakeEntry(("h", i, "r", 1)) for i in range(10)]
    wd, vswitch, events = make(sim, entries)
    tick(sim, 5)
    assert wd.ticks >= 5
    assert wd.sheds == 0 and events == []


def test_table_pressure_sheds_lowest_beta_first(sim):
    entries = [FakeEntry(("h", i, "r", 1), beta=0.1 * (i + 1))
               for i in range(4)]
    wd, vswitch, events = make(sim, entries, max_flow_entries=2)
    tick(sim)
    # step = 50% of 4 candidates = 2 shed, smallest beta first.
    assert [e.shed for e in entries] == [True, True, False, False]
    assert [k for kind, k, d in events] == [("h", 0, "r", 1), ("h", 1, "r", 1)]
    assert all(kind == "guard_shed" for kind, k, d in events)
    assert events[0][2]["reason"] == "flow_table"


def test_unenforced_entries_are_never_shed(sim):
    entries = [FakeEntry(("h", 0, "r", 1), enforced=False),
               FakeEntry(("h", 1, "r", 1))]
    wd, vswitch, events = make(sim, entries, max_flow_entries=0)
    tick(sim)
    assert entries[0].shed is False
    assert entries[1].shed is True


def test_ops_budget_sheds_on_per_packet_delta(sim):
    entries = [FakeEntry(("h", i, "r", 1)) for i in range(2)]
    wd, vswitch, events = make(sim, entries, max_ops_per_packet=3.0)
    # 2 ops per packet: under budget.
    vswitch.ops.packets_egress = 10
    vswitch.ops.record("seq_update", 20)
    tick(sim)
    assert wd.sheds == 0
    # Next interval: 10 ops per packet — over budget.
    vswitch.ops.packets_egress = 20
    vswitch.ops.record("cc_update", 100)
    tick(sim)
    assert wd.sheds == 1
    assert events[0][2]["reason"] == "ops_budget"


def test_hysteresis_unsheds_highest_priority_first(sim):
    entries = [FakeEntry(("h", i, "r", 1), beta=0.1 * (i + 1))
               for i in range(4)]
    wd, vswitch, events = make(sim, entries, max_flow_entries=3,
                               resume_fraction=0.9)
    tick(sim)  # 4 > 3: shed step = 50% of 4 candidates = 2 (h0, h1)
    assert wd.sheds == 2
    assert entries[0].shed and entries[1].shed
    # In the hysteresis band (2.7 < 3 <= 3): neither shed nor re-admit.
    vswitch.table = entries[:3]
    tick(sim)
    assert wd.sheds == 2 and wd.unsheds == 0
    # Load drops below the resume fraction: re-admit step by step,
    # highest beta among the shed first.
    vswitch.table = entries[:2]
    tick(sim)
    assert wd.unsheds == 1
    assert entries[1].shed is False  # h1 (beta 0.2) before h0 (beta 0.1)
    assert entries[0].shed is True
    tick(sim)
    assert entries[0].shed is False
    kinds = [kind for kind, k, d in events]
    assert kinds == ["guard_shed", "guard_shed", "guard_unshed",
                     "guard_unshed"]


def test_stop_halts_ticks(sim):
    wd, vswitch, events = make(sim, [], max_flow_entries=1)
    tick(sim, 2)
    wd.stop()
    seen = wd.ticks
    tick(sim, 3)
    assert wd.ticks == seen
