"""Mid-run mutation determinism: §10's byte-identity contract holds for
service runs whose policies change while flows are in flight."""

from repro.control.service import service_cell
from repro.runtime import Runtime, RunSpec, canonical_json

CONFIG = {"n_hosts": 4, "epoch_s": 0.01, "arrival_rate_hz": 300.0,
          "peers": 2, "seed": 11, "guard": True}
#: Exercises every mutation path: policy clamp, guard reload, a doomed
#: canary, a rejected command and the kill switch — all mid-run.
SCHEDULE = [
    {"epoch": 0, "op": "set_guard", "params": {"clean_windows": 5}},
    {"epoch": 1, "op": "set_policy", "hosts": ["h1"],
     "policy": {"max_rwnd": 2920}},
    {"epoch": 1, "op": "canary_start", "policy": {"max_rwnd": 1460},
     "hosts": ["h3"], "timeout_epochs": 2},
    {"epoch": 2, "op": "set_policy", "hosts": ["nope"], "policy": {}},
    {"epoch": 3, "op": "kill_switch"},
]
EPOCHS = 5


def spec():
    return RunSpec("repro.control.service:service_cell",
                   {"config": CONFIG, "schedule": SCHEDULE,
                    "epochs": EPOCHS})


def test_replay_of_identical_schedule_is_byte_identical():
    first = canonical_json(service_cell(CONFIG, SCHEDULE, EPOCHS))
    second = canonical_json(service_cell(CONFIG, SCHEDULE, EPOCHS))
    assert first == second


def test_serial_pool_and_cache_agree(tmp_path):
    serial = Runtime(jobs=1).map([spec()])[0]
    pooled_rt = Runtime(jobs=2)
    pooled = pooled_rt.map([spec(), spec()])
    assert pooled_rt.stats.executed == 2
    cached_rt = Runtime(jobs=1, cache=tmp_path / "cache")
    cached_rt.map([spec()])
    replay = cached_rt.map([spec()])[0]
    assert cached_rt.stats.cache_hits == 1
    blobs = {canonical_json(r) for r in (serial, *pooled, replay)}
    assert len(blobs) == 1, "serial, pool and cache replay must agree"


def test_schedule_actually_mutated_the_run():
    result = service_cell(CONFIG, SCHEDULE, EPOCHS)
    statuses = [c["status"] for c in result["commands"]]
    assert statuses.count("applied") == 4
    assert statuses.count("rejected") == 1
    assert result["canary"]["state"] == "rolled_back"
    assert result["counters"]["migrations"] > 0
    assert result["counters"]["restarts"] == 0
