"""Unit tests for RWND enforcement and policing (§3.3)."""

import pytest

from repro.core.enforcement import Policer, WindowEnforcer
from repro.net.packet import Packet


def ack_with_window(window_bytes, wscale):
    p = Packet(src="b", dst="a", sport=2, dport=1, ack=True)
    p.set_advertised_window(window_bytes, wscale)
    return p


def test_enforce_overwrites_smaller_window():
    enforcer = WindowEnforcer()
    ack = ack_with_window(1 << 20, 9)
    assert enforcer.enforce(ack, 50_000, 9)
    assert ack.advertised_window(9) <= 50_000 + (1 << 9)
    assert enforcer.rewrites == 1


def test_enforce_preserves_tighter_original():
    """Never lie upward about receive buffer space."""
    enforcer = WindowEnforcer()
    ack = ack_with_window(10_000, 9)
    assert not enforcer.enforce(ack, 1 << 20, 9)
    assert ack.advertised_window(9) < 20_000
    assert enforcer.passes == 1


def test_enforce_equal_window_is_a_pass():
    enforcer = WindowEnforcer()
    ack = ack_with_window(1 << 15, 0)
    assert not enforcer.enforce(ack, 1 << 15, 0)


def test_enforce_respects_window_scale():
    enforcer = WindowEnforcer()
    ack = ack_with_window(1 << 22, 9)
    enforcer.enforce(ack, 100_000, 9)
    # Encoded field must decode (at scale 9) to >= requested window.
    assert 100_000 <= ack.advertised_window(9) < 100_000 + (1 << 9)


def test_make_window_update():
    pkt = WindowEnforcer.make_window_update(("b", 2, "a", 1), 5000, 30_000, 4)
    assert pkt.src == "b" and pkt.dst == "a"
    assert pkt.ack and pkt.ack_seq == 5000
    assert pkt.payload_len == 0
    assert pkt.advertised_window(4) >= 30_000


def test_make_dupack_mirrors_window_update_shape():
    pkt = WindowEnforcer.make_dupack(("b", 2, "a", 1), 7000, 10_000, 4)
    assert pkt.ack_seq == 7000 and pkt.payload_len == 0


# ---------------------------------------------------------------------------
# Policer
# ---------------------------------------------------------------------------
def data(seq, length, mss=1460):
    return Packet(src="a", dst="b", sport=1, dport=2, seq=seq,
                  payload_len=length)


def test_policer_allows_within_window():
    policer = Policer(slack_segments=0)
    assert policer.allow(data(0, 1000), snd_una=0, window_bytes=2000, mss=1460)
    assert policer.drops == 0


def test_policer_drops_beyond_window():
    policer = Policer(slack_segments=0)
    assert not policer.allow(data(5000, 1460), snd_una=0, window_bytes=2000,
                             mss=1460)
    assert policer.drops == 1


def test_policer_slack_absorbs_boundary():
    policer = Policer(slack_segments=2)
    # 2 MSS beyond the window: allowed by slack.
    pkt = data(2000, 1460)
    assert policer.allow(pkt, snd_una=0, window_bytes=2000, mss=1460)


def test_policer_exact_edge():
    policer = Policer(slack_segments=0)
    assert policer.allow(data(0, 2000), snd_una=0, window_bytes=2000, mss=1460)
    assert not policer.allow(data(1, 2000), snd_una=0, window_bytes=2000,
                             mss=1460)


def test_policer_negative_slack_rejected():
    with pytest.raises(ValueError):
        Policer(slack_segments=-1)


# ---------------------------------------------------------------------------
# Policer edges: zero windows, encoding rounding, wraparound, zero slack
# ---------------------------------------------------------------------------
def test_policer_zero_window_admits_one_byte_probe():
    """A zero window must not deadlock a conforming flow: the one-byte
    window probe passes, anything larger is policed."""
    policer = Policer(slack_segments=0)
    assert policer.allow(data(0, 1), snd_una=0, window_bytes=0, mss=1460)
    assert not policer.allow(data(0, 2), snd_una=0, window_bytes=0, mss=1460)
    assert not policer.allow(data(0, 1460), snd_una=0, window_bytes=0, mss=1460)
    assert policer.drops == 2


def test_policer_zero_window_with_slack_keeps_slack_budget():
    policer = Policer(slack_segments=1)
    assert policer.allow(data(0, 1460), snd_una=0, window_bytes=0, mss=1460)
    assert not policer.allow(data(0, 1461), snd_una=0, window_bytes=0, mss=1460)


def test_policer_honours_wscale_encoding_roundup():
    """Enforcement rounds the 16-bit field *up* to the next wscale unit,
    so a conforming stack may sit just past the raw window — the policer
    must police against the encoded edge, not the raw one."""
    policer = Policer(slack_segments=0)
    window, wscale = 50_000, 9
    ack = ack_with_window(1 << 20, wscale)
    WindowEnforcer().enforce(ack, window, wscale)
    encoded = ack.advertised_window(wscale)  # 50_176 at wscale 9
    assert encoded > window
    # The VM legitimately fills the encoded window...
    assert policer.allow(data(0, encoded), snd_una=0, window_bytes=window,
                         mss=1460, wscale=wscale)
    # ...but one byte beyond it is a violation even before slack.
    assert not policer.allow(data(1, encoded), snd_una=0, window_bytes=window,
                             mss=1460, wscale=wscale)


def test_policer_exact_boundary_zero_slack():
    """policing_slack_segments=0: the budget edge is exact (no grace)."""
    policer = Policer(slack_segments=0)
    assert policer.allow(data(0, 2920), snd_una=0, window_bytes=2920, mss=1460)
    assert not policer.allow(data(1460, 1461), snd_una=0, window_bytes=2920,
                             mss=1460)
    assert policer.drops == 1


def test_policer_exact_boundary_across_wrap():
    """The enforced_wnd + slack edge behaves identically across 2^32."""
    from repro.net.packet import SEQ_SPACE
    policer = Policer(slack_segments=2)
    una = SEQ_SPACE - 1000
    window, mss = 2000, 1460
    budget = window + 2 * mss
    edge_start = (una + budget - 100) % SEQ_SPACE  # ends exactly at the edge
    assert policer.allow(data(edge_start, 100), snd_una=una,
                         window_bytes=window, mss=mss)
    assert not policer.allow(data(edge_start, 101), snd_una=una,
                             window_bytes=window, mss=mss)
    # Retransmission from just below the wrap is always admitted.
    assert policer.allow(data(una - 1460, 1460), snd_una=una,
                         window_bytes=window, mss=mss)
    assert policer.drops == 1
