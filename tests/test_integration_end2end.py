"""End-to-end integration tests reproducing the paper's headline claims
at test-friendly scale (short runs, small topologies).
"""

import pytest

from repro.core import AcdcConfig
from repro.experiments.common import ACDC, CUBIC, DCTCP
from repro.experiments.runners import run_dumbbell, run_incast
from repro.metrics import percentile


pytestmark = pytest.mark.slow


def test_dctcp_keeps_rtt_an_order_of_magnitude_below_cubic():
    cubic = run_dumbbell(CUBIC, pairs=3, duration=0.3, mtu=9000)
    dctcp = run_dumbbell(DCTCP, pairs=3, duration=0.3, mtu=9000)
    assert percentile(cubic.rtt_samples, 50) > \
        8 * percentile(dctcp.rtt_samples, 50)


def test_acdc_tracks_dctcp_rtt_and_throughput():
    dctcp = run_dumbbell(DCTCP, pairs=3, duration=0.3, mtu=9000)
    acdc = run_dumbbell(ACDC, pairs=3, duration=0.3, mtu=9000)
    assert acdc.avg_tput_bps == pytest.approx(dctcp.avg_tput_bps, rel=0.05)
    p50_d = percentile(dctcp.rtt_samples, 50)
    p50_a = percentile(acdc.rtt_samples, 50)
    assert p50_a < 2 * p50_d
    assert acdc.fairness > 0.98


def test_acdc_works_for_every_guest_stack():
    """The Table 1 claim, in miniature."""
    reference = run_dumbbell(ACDC, pairs=3, duration=0.25, mtu=9000)
    for guest in ("reno", "vegas", "illinois", "highspeed", "dctcp"):
        result = run_dumbbell(ACDC.with_host_cc(guest), pairs=3,
                              duration=0.25, mtu=9000)
        assert result.fairness > 0.95, guest
        assert result.avg_tput_bps == pytest.approx(
            reference.avg_tput_bps, rel=0.1), guest


def test_acdc_utilisation_matches_line_rate():
    result = run_dumbbell(ACDC, pairs=3, duration=0.3, mtu=9000,
                          rtt_probe=False)
    assert sum(result.tputs_bps) > 9e9


def test_acdc_zero_drops_on_dumbbell():
    result = run_dumbbell(ACDC, pairs=3, duration=0.3, mtu=9000,
                          rtt_probe=False)
    assert result.drop_rate == 0.0


def test_heterogeneous_stacks_fair_under_acdc():
    """The Fig. 17 claim: five different stacks, one fabric, fair."""
    mixed = run_dumbbell(
        ACDC, pairs=5, duration=0.4, mtu=9000, rtt_probe=False,
        host_ccs=["cubic", "illinois", "highspeed", "reno", "vegas"])
    assert mixed.fairness > 0.97


def test_heterogeneous_stacks_unfair_without_acdc():
    """The Fig. 1 problem statement."""
    mixed = run_dumbbell(
        CUBIC, pairs=5, duration=0.4, mtu=9000, rtt_probe=False,
        host_ccs=["cubic", "illinois", "highspeed", "reno", "vegas"])
    assert mixed.fairness < 0.9


def test_incast_acdc_floor_beats_dctcp_floor():
    """The Fig. 19 effect: AC/DC's byte-granular window floor keeps the
    standing queue (and so the RTT) below native DCTCP's 2-MSS floor."""
    dctcp = run_incast(DCTCP, n_senders=24, duration=0.25, mtu=9000)
    acdc = run_incast(ACDC, n_senders=24, duration=0.25, mtu=9000)
    assert percentile(acdc.rtt_samples, 50) < percentile(dctcp.rtt_samples, 50)
    assert acdc.fairness > 0.99
    assert acdc.drop_rate == 0.0


def test_incast_floor_knob_controls_rtt():
    """Raising AC/DC's floor to 2 MSS reproduces DCTCP's standing queue."""
    mss = 8960
    low = run_incast(ACDC, n_senders=24, duration=0.25, mtu=9000,
                     acdc_config=AcdcConfig(min_wnd_bytes=mss))
    high = run_incast(ACDC, n_senders=24, duration=0.25, mtu=9000,
                      acdc_config=AcdcConfig(min_wnd_bytes=2 * mss))
    assert percentile(low.rtt_samples, 50) < percentile(high.rtt_samples, 50)
