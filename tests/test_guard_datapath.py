"""Integration tests: the Guard wired into the AC/DC vSwitch datapath.

Real guest TCP through the full pipeline; the guard watches the sender's
vSwitch.  A tight ``max_rwnd`` policy clamp stands in for congestion so a
cheating guest overruns the advertised edge within a few RTTs.
"""

from repro.core import AcdcConfig, AcdcVswitch, FlowPolicy, PolicyEngine
from repro.faults import OptionStrip, install_faults
from repro.guard import Guard, GuardConfig
from repro.metrics import EventLog, FaultRecorder
from repro.sim import Simulator
from repro.net.topology import star
from repro.workloads.apps import Sink

MSS = 1440


def guarded_pair(two_hosts, guard_config=None, policy=None):
    sim, topo, a, b, sw = two_hosts
    guard = Guard(guard_config or GuardConfig(window_packets=16))
    vsw_a = AcdcVswitch(a, policy=policy, guard=guard)
    vsw_b = AcdcVswitch(b)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    return sim, a, b, vsw_a, guard


def transfer(sim, a, b, until=0.2, conn_opts=None, nbytes=None):
    opts = conn_opts or {}
    Sink(b, 7000, **{k: v for k, v in opts.items() if k != "ignore_rwnd"})
    conn = a.connect(b.addr, 7000, **opts)
    if nbytes is None:
        conn.send_forever()
    else:
        conn.send(nbytes)
    sim.run(until=until)
    return conn


def clamp_policy(segments=4):
    return PolicyEngine(default=FlowPolicy(max_rwnd=segments * MSS))


def test_conforming_flow_stays_level_zero(two_hosts):
    sim, a, b, vsw_a, guard = guarded_pair(
        two_hosts, policy=clamp_policy())
    conn = transfer(sim, a, b, nbytes=400_000)
    fc = guard.state_of(conn.key())
    assert fc is not None
    assert fc.level == 0 and fc.state == "conforming"
    assert fc.advertised_edge is not None
    # No enforcement actions, no events of any kind: a clamped but
    # obedient guest pays nothing for the guard being present.
    assert guard.police_drops == 0
    assert guard.quarantine_drops == 0
    assert guard.events.signature() == EventLog().signature()


def test_rwnd_cheater_escalated_and_policed(two_hosts):
    sim, a, b, vsw_a, guard = guarded_pair(
        two_hosts, policy=clamp_policy())
    conn = transfer(sim, a, b, conn_opts={"ignore_rwnd": True})
    fc = guard.state_of(conn.key())
    assert fc.state == "violator"
    assert fc.level >= 2
    assert guard.police_drops > 0
    counts = guard.recorder.snapshot()
    assert counts["guard_escalate"] >= 1
    assert counts["guard_police_drop"] == guard.police_drops
    # The penalty clamp took hold of the vSwitch CC.
    entry = vsw_a.table.entries[conn.key()]
    assert entry.vswitch_cc.max_wnd <= 2 * vsw_a.mss


def test_cheater_events_deterministic_across_runs():
    signatures = []
    for _ in range(2):
        sim = Simulator()
        topo, hosts, sw = star(sim, 2, mtu=1500, ecn_enabled=True, seed=0)
        a, b = hosts
        guard = Guard(GuardConfig(window_packets=16))
        a.attach_vswitch(AcdcVswitch(a, policy=clamp_policy(), guard=guard))
        b.attach_vswitch(AcdcVswitch(b))
        transfer(sim, a, b, until=0.1, conn_opts={"ignore_rwnd": True})
        signatures.append(guard.events.signature())
    assert signatures[0] == signatures[1]
    assert signatures[0] != EventLog().signature()


def test_option_strip_degrades_to_local_signal_cc(two_hosts):
    sim, a, b, vsw_a, guard = guarded_pair(
        two_hosts, guard_config=GuardConfig(feedback_loss_bytes=30_000))
    recorder = FaultRecorder()
    install_faults(a, [OptionStrip(direction="ingress")], recorder=recorder)
    conn = transfer(sim, a, b, nbytes=400_000)
    assert recorder.snapshot().get("option_strip", 0) > 0
    fc = guard.state_of(conn.key())
    assert fc.fallback_active is True
    assert guard.fallbacks == 1
    entry = vsw_a.table.entries[conn.key()]
    # Swapped to the loss/timeout-driven fallback, still enforced.
    assert entry.vswitch_cc.name == "reno"
    assert guard.recorder.snapshot()["guard_feedback_fallback"] == 1
    # Degraded is not punished: the flow keeps making progress.
    assert conn.bytes_acked_total >= 400_000


def test_fallback_is_one_way_and_preserves_operating_point(two_hosts):
    sim, a, b, vsw_a, guard = guarded_pair(
        two_hosts, guard_config=GuardConfig(feedback_loss_bytes=30_000))
    install_faults(a, [OptionStrip(direction="ingress")])
    conn = transfer(sim, a, b, nbytes=600_000)
    # One swap, even though feedback stays dead for the rest of the flow.
    assert guard.fallbacks == 1
    entry = vsw_a.table.entries[conn.key()]
    assert entry.vswitch_cc.min_wnd <= entry.vswitch_cc.wnd
    assert entry.vswitch_cc.wnd <= entry.vswitch_cc.max_wnd


def test_shed_entry_is_passthrough_but_counted(two_hosts):
    sim, a, b, vsw_a, guard = guarded_pair(
        two_hosts, policy=clamp_policy())
    conn = transfer(sim, a, b, until=0.05)
    entry = vsw_a.table.entries[conn.key()]
    fc = guard.state_of(conn.key())
    entry.shed = True
    rewrites = entry.enforcer.rewrites
    windows_seen = fc.window_packets
    acked = conn.bytes_acked_total
    seq_updates = vsw_a.ops.snapshot()["seq_update"]
    sim.run(until=0.15)
    # No enforcement or monitoring on a shed flow...
    assert entry.enforcer.rewrites == rewrites
    assert fc.window_packets == windows_seen
    # ...but conntrack statistics keep accruing and traffic still flows
    # (the guest stack is on its own, released from the clamp).
    assert vsw_a.ops.snapshot()["seq_update"] > seq_updates
    assert conn.bytes_acked_total > acked
