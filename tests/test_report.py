"""Unit tests for the text reporting helpers."""

from repro.experiments.report import format_cdf, format_series, format_table


def test_format_table_alignment_and_title():
    text = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 2]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.235" in text   # floats at 3 decimals
    assert "bbbb" in text


def test_format_table_handles_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text


def test_format_cdf_quantiles():
    text = format_cdf([1.0, 2.0, 3.0, 4.0], "lat", unit="ms")
    assert text.startswith("lat (n=4):")
    assert "p50=" in text and "p99.9=" in text
    assert "ms" in text


def test_format_cdf_empty():
    assert "(no samples)" in format_cdf([], "lat")


def test_format_cdf_scaling():
    text = format_cdf([0.001], "x", unit="ms", scale=1e3,
                      points=(0.5,))
    assert "p50=1.000ms" in text


def test_format_series_downsampling():
    series = [(i * 0.1, float(i)) for i in range(10)]
    text = format_series(series, "s", every=5)
    assert text.startswith("s: ")
    assert text.count(":") == 1 + 2  # label colon + 2 sampled points
