"""Unit tests for the §3.1 congestion-state inference."""

from repro.core.conntrack import ConnTrack, DUPACK_THRESHOLD
from repro.net.packet import Packet


def data(seq, length=1000):
    return Packet(src="a", dst="b", sport=1, dport=2, seq=seq,
                  payload_len=length)


def ack(ack_seq):
    return Packet(src="b", dst="a", sport=2, dport=1, ack=True,
                  ack_seq=ack_seq)


def test_starts_uninitialized():
    ct = ConnTrack()
    assert not ct.initialized
    assert ct.bytes_outstanding == 0


def test_syn_seeds_sequence_space():
    ct = ConnTrack()
    syn = Packet(src="a", dst="b", sport=1, dport=2, seq=100, syn=True)
    ct.on_egress_syn(syn)
    assert ct.snd_una == 100
    assert ct.snd_nxt == 101


def test_snd_nxt_advances_with_data():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 1000))
    ct.on_egress_data(data(1000, 1000))
    assert ct.snd_nxt == 2000
    assert ct.bytes_outstanding == 2000


def test_retransmission_does_not_move_snd_nxt():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 1000))
    ct.on_egress_data(data(1000, 1000))
    ct.on_egress_data(data(0, 1000))  # retransmission
    assert ct.snd_nxt == 2000


def test_new_ack_advances_snd_una():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 3000))
    verdict = ct.on_ingress_ack(ack(2000), now=1.0)
    assert verdict.newly_acked == 2000
    assert ct.snd_una == 2000
    assert ct.bytes_outstanding == 1000


def test_dupack_counting_and_loss_threshold():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 5000))
    ct.on_ingress_ack(ack(1000), now=0.0)
    verdicts = [ct.on_ingress_ack(ack(1000), now=0.0)
                for _ in range(DUPACK_THRESHOLD)]
    assert all(v.is_dupack for v in verdicts)
    assert [v.loss_detected for v in verdicts] == [False, False, True]
    assert ct.dupacks == 3


def test_new_ack_resets_dupacks():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 5000))
    ct.on_ingress_ack(ack(1000), now=0.0)
    ct.on_ingress_ack(ack(1000), now=0.0)
    ct.on_ingress_ack(ack(2000), now=0.0)
    assert ct.dupacks == 0


def test_ack_with_payload_is_not_a_dupack():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 5000))
    ct.on_ingress_ack(ack(1000), now=0.0)
    piggy = Packet(src="b", dst="a", sport=2, dport=1, ack=True,
                   ack_seq=1000, payload_len=500)
    verdict = ct.on_ingress_ack(piggy, now=0.0)
    assert not verdict.is_dupack


def test_dupack_needs_outstanding_data():
    ct = ConnTrack()
    ct.on_egress_data(data(0, 1000))
    ct.on_ingress_ack(ack(1000), now=0.0)  # everything acked
    verdict = ct.on_ingress_ack(ack(1000), now=0.0)
    assert not verdict.is_dupack


def test_timeout_inferred_only_with_outstanding_bytes():
    ct = ConnTrack()
    assert not ct.infer_timeout()
    ct.on_egress_data(data(0, 1000))
    assert ct.infer_timeout()
    assert ct.timeouts_inferred == 1
    ct.on_ingress_ack(ack(1000), now=0.0)
    assert not ct.infer_timeout()


def test_first_ack_initializes():
    ct = ConnTrack()
    verdict = ct.on_ingress_ack(ack(500), now=0.0)
    assert verdict.newly_acked == 0
    assert ct.snd_una == 500


def test_ack_beyond_snd_nxt_tracks_forward():
    """An ACK ahead of everything we saw (e.g. entry created mid-flow)."""
    ct = ConnTrack()
    ct.on_egress_data(data(0, 1000))
    verdict = ct.on_ingress_ack(ack(5000), now=0.0)
    assert ct.snd_una == 5000
    assert ct.snd_nxt == 5000
    assert ct.bytes_outstanding == 0


def test_ack_gap_estimate_tracks_cadence():
    """The decaying-max gap estimate ~follows the ACK inter-arrival."""
    ct = ConnTrack()
    ct.on_egress_data(data(0, 100_000))
    t = 0.0
    for i in range(1, 20):
        t += 0.010  # one ACK per 10 ms (a WAN RTT)
        ct.on_ingress_ack(ack(i * 1000), now=t)
    assert 0.009 <= ct.ack_gap_estimate <= 0.011
    # Cadence speeds up: the estimate decays toward the new gap.
    for i in range(20, 200):
        t += 0.0001
        ct.on_ingress_ack(ack(i * 1000), now=t)
    assert ct.ack_gap_estimate < 0.002
