"""Unit tests for topology builders and BFS routing."""

import pytest

from repro.net.topology import Topology, dumbbell, parking_lot, star


def test_dumbbell_structure(sim):
    topo, senders, receivers = dumbbell(sim, pairs=3)
    assert len(senders) == 3 and len(receivers) == 3
    assert set(topo.switches) == {"sw-left", "sw-right"}
    assert len(topo.hosts) == 6


def test_dumbbell_routes_cross_bottleneck(sim):
    topo, senders, receivers = dumbbell(sim, pairs=2)
    left = topo.switches["sw-left"]
    right = topo.switches["sw-right"]
    # Left switch must know routes to all receivers (via the trunk port).
    assert left.fib["r1"] == left.fib["r2"]
    # ...and to its directly attached senders via distinct ports.
    assert left.fib["s1"] != left.fib["s2"]
    assert "s1" in right.fib and "r1" in right.fib


def test_dumbbell_end_to_end_delivery(sim):
    from repro.net.packet import Packet
    topo, senders, receivers = dumbbell(sim, pairs=1, ecn_enabled=False)
    got = []
    receivers[0].deliver = lambda p: got.append(p)
    senders[0].wire_out(Packet(src="s1", dst="r1", sport=1, dport=2,
                               payload_len=100))
    sim.run()
    assert len(got) == 1


def test_star_structure(sim):
    topo, hosts, switch = star(sim, 5)
    assert len(hosts) == 5
    assert len(switch.ports) == 5
    for host in hosts:
        assert host.addr in switch.fib


def test_parking_lot_structure(sim):
    topo, senders, receiver = parking_lot(sim, senders=5, hops=4)
    assert len(topo.switches) == 4
    assert len(senders) == 5
    # Every switch can reach the receiver.
    for sw in topo.switches.values():
        assert receiver.addr in sw.fib


def test_parking_lot_needs_two_switches(sim):
    with pytest.raises(ValueError):
        parking_lot(sim, hops=1)


def test_parking_lot_multi_hop_delivery(sim):
    from repro.net.packet import Packet
    topo, senders, receiver = parking_lot(sim, senders=3, hops=3,
                                          ecn_enabled=False)
    got = []
    receiver.deliver = lambda p: got.append(p)
    for s in senders:
        s.wire_out(Packet(src=s.addr, dst=receiver.addr, sport=1, dport=2,
                          payload_len=10))
    sim.run()
    assert len(got) == 3


def test_duplicate_names_rejected(sim):
    topo = Topology(sim)
    topo.add_host("x")
    with pytest.raises(ValueError):
        topo.add_host("x")
    with pytest.raises(ValueError):
        topo.add_switch("x")


def test_seed_propagates_to_hosts(sim):
    topo_a, hosts_a, _ = star(sim, 2, seed=1)
    # Same seed => same jitter stream state; different seeds differ.
    from repro.sim import Simulator
    topo_b, hosts_b, _ = star(Simulator(), 2, seed=2)
    ja = hosts_a[0]._jitter_rng.random()
    jb = hosts_b[0]._jitter_rng.random()
    assert ja != jb


def test_switch_opts_forwarded(sim):
    topo, hosts, switch = star(sim, 2, ecn_enabled=False,
                               ecn_threshold_bytes=12345)
    assert switch.marker.enabled is False
    assert switch.marker.threshold == 12345


def test_mtu_sets_host_mss(sim):
    topo, hosts, _ = star(sim, 2, mtu=9000)
    assert hosts[0].mss == 8960
