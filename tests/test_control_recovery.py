"""Canary/recovery interplay: rollout state must survive snapshot/restore.

A checkpoint lands *mid-rollout* whenever a service is snapshotted while
a canary is in flight.  The rollout's bookkeeping — the consecutive
healthy streak (reset by ungradeable epochs), the timeout counter, the
recorded prior policies, the last-known-good config — is exactly the
state a naive recovery design would lose; these tests pin each piece
through a pickle round-trip and through the full
:class:`~repro.recovery.DurableService` restore path.
"""

import pickle

from repro.control import Service, ServiceConfig
from repro.control.canary import CanaryRollout, TenantPolicy
from repro.experiments import canary as canary_experiment
from repro.recovery import DurableService
from repro.runtime.spec import canonical_json


def canon(result) -> str:
    return canonical_json(result)


# ---------------------------------------------------------------------------
# State machine through a snapshot (pure unit)
# ---------------------------------------------------------------------------

def test_ungradeable_streak_state_survives_pickle():
    rollout = CanaryRollout(candidate=TenantPolicy(max_rwnd=1460),
                            cohort=["h1"], prior={"h1": TenantPolicy()},
                            started_epoch=2, promote_after=2,
                            timeout_epochs=4)
    rollout.tick(2, [], gradeable=True)    # streak = 1
    rollout.tick(3, [], gradeable=False)   # ungradeable: streak resets

    clone = pickle.loads(pickle.dumps(rollout))
    assert clone.healthy_epochs == 0
    assert clone.graded_epochs == 1
    assert clone.active

    # Both copies must walk the identical path from here: one more
    # gradeable epoch is NOT enough (the streak restarted), and the
    # timeout then fires on the 4th canary epoch.
    for r in (rollout, clone):
        assert r.tick(4, [], gradeable=True) == "hold"
        assert r.tick(5, [], gradeable=False) == "rollback"
        assert r.reason == "timeout"
    assert rollout.to_json() == clone.to_json()


def test_rolled_back_state_survives_pickle():
    rollout = CanaryRollout(candidate=TenantPolicy(max_rwnd=1460),
                            cohort=["h1"], prior={"h1": TenantPolicy()},
                            started_epoch=2)
    deltas = [{"slo": "p99_fct", "canary": 9.0, "baseline": 1.0,
               "limit": 2.0}]
    rollout.tick(2, deltas, gradeable=True)
    clone = pickle.loads(pickle.dumps(rollout))
    assert clone.state == "rolled_back"
    assert clone.reason == "slo_violation"
    assert clone.violations == deltas
    assert clone.prior["h1"].to_json() == TenantPolicy().to_json()


# ---------------------------------------------------------------------------
# Full service: snapshot mid-rollout, restore, identical verdicts
# ---------------------------------------------------------------------------

STARVED = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=100.0, peers=1,
               msg_sizes=[16_384], msg_weights=[1], seed=7)
STARVED_SCHEDULE = [{"epoch": 0, "op": "canary_start",
                     "policy": {"beta": 0.9}, "hosts": ["h4"],
                     "timeout_epochs": 3}]


def test_ungradeable_canary_times_out_identically_after_restore(tmp_path):
    # Every epoch is ungradeable (arrival starvation), so the rollout is
    # pure streak/timeout bookkeeping — the state most at risk.
    baseline = Service(ServiceConfig(**STARVED),
                       schedule=STARVED_SCHEDULE).run(6)
    assert baseline["canary"]["reason"] == "timeout"

    victim = DurableService(config=STARVED, schedule=STARVED_SCHEDULE,
                            root=tmp_path)
    victim.advance()  # snapshot at epoch 1: rollout mid-flight
    victim.close()

    resumed = DurableService(root=tmp_path)
    rollout = resumed.service.control.rollout
    assert rollout is not None and rollout.active
    result = resumed.run(6)
    resumed.close()
    assert canon(result) == canon(baseline)
    assert result["canary"]["state"] == "rolled_back"
    assert result["canary"]["ended_epoch"] == 2


def test_slo_rollback_fires_identically_after_restore(tmp_path):
    config = dict(n_hosts=6, epoch_s=0.02, seed=1)
    schedule = [{"epoch": 1, "op": "canary_start",
                 "policy": {"max_rwnd": canary_experiment.BAD_MAX_RWND},
                 "fraction": 0.25}]
    baseline = Service(ServiceConfig(**config), schedule=schedule).run(5)
    assert baseline["canary"]["state"] == "rolled_back"

    victim = DurableService(config=config, schedule=schedule, root=tmp_path)
    victim.advance()
    victim.advance()  # snapshot at epoch 2: canary staged, verdict pending
    victim.close()

    resumed = DurableService(root=tmp_path)
    result = resumed.run(5)
    resumed.close()
    assert canon(result) == canon(baseline)
    assert result["canary"]["reason"] == "slo_violation"


def test_last_known_good_survives_restore(tmp_path):
    # Promotion updates last-known-good; a restore must carry it so the
    # kill switch keeps restoring the *blessed* config, not the ancient
    # prior.
    config = dict(n_hosts=4, epoch_s=0.02, arrival_rate_hz=400.0,
                  peers=2, seed=7)
    schedule = [{"epoch": 0, "op": "canary_start", "policy": {"beta": 0.8},
                 "hosts": ["h2"], "promote_after": 2}]
    supervisor = DurableService(config=config, schedule=schedule,
                                root=tmp_path)
    result = supervisor.run(4)
    assert result["canary"]["state"] == "promoted"
    supervisor.close()

    resumed = DurableService(root=tmp_path)
    lkg = resumed.service.control.last_known_good
    resumed.close()
    assert lkg["policies"]["h1"]["beta"] == 0.8
