"""Unit tests for the repro.faults injection subsystem.

Covers the contracts the chaos experiment leans on: seeded determinism,
per-cause accounting, the fault chain's packet plumbing, and — the §4
soft-state claim — that a vSwitch restart mid-transfer loses no
connection because flow entries resurrect from the first post-restart
packet.
"""

import pytest

from repro.core import AcdcVswitch
from repro.faults import (
    Corruption,
    Duplication,
    FaultyDatapath,
    LinkFlap,
    PacketLoss,
    Reordering,
    Transparent,
    VswitchRestart,
    install_faults,
    is_data,
    is_pure_ack,
)
from repro.metrics import FaultRecorder
from repro.net.packet import Packet
from repro.workloads.apps import Sink


class _StubPipe:
    """Just enough pipeline for driving a fault's process() directly."""

    def __init__(self):
        self.recorder = FaultRecorder()

    def record(self, cause):
        self.recorder.record(cause)


def _data_packet(i=0):
    return Packet(src="a", dst="b", sport=1, dport=2,
                  seq=i * 1000, payload_len=1000)


# ---------------------------------------------------------------------------
# Determinism and accounting
# ---------------------------------------------------------------------------
def test_same_seed_same_drop_sequence():
    """Two injectors with the same seed drop exactly the same packets."""
    outcomes = []
    for _ in range(2):
        fault = PacketLoss(0.3, seed=42)
        pipe = _StubPipe()
        outcomes.append([
            fault.process(_data_packet(i), pipe, 0, "egress") is None
            for i in range(500)
        ])
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0]) and not all(outcomes[0])


def test_different_seeds_differ():
    def drops(seed):
        fault = PacketLoss(0.3, seed=seed)
        pipe = _StubPipe()
        return [fault.process(_data_packet(i), pipe, 0, "egress") is None
                for i in range(500)]
    assert drops(1) != drops(2)


def test_events_match_recorder():
    fault = PacketLoss(0.5, seed=0)
    pipe = _StubPipe()
    for i in range(200):
        fault.process(_data_packet(i), pipe, 0, "egress")
    assert fault.events == pipe.recorder.counts["loss"]
    assert fault.events > 0


def test_direction_and_match_scoping():
    fault = PacketLoss(1.0, seed=0, direction="egress", match=is_data)
    data = _data_packet()
    ack = Packet(src="a", dst="b", sport=1, dport=2, ack=True)
    assert fault.applies(data, "egress")
    assert not fault.applies(data, "ingress")
    assert not fault.applies(ack, "egress")
    assert is_pure_ack(ack)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PacketLoss(1.5)
    with pytest.raises(ValueError):
        Corruption(-0.1)
    with pytest.raises(ValueError):
        Reordering(0.1, hold_s=0.0)
    with pytest.raises(ValueError):
        LinkFlap(0.005, down_for_s=0.006)
    with pytest.raises(ValueError):
        PacketLoss(0.1, direction="sideways")


def test_link_flap_down_fraction_roughly_matches():
    """Across many periods the jittered outage covers ~down/period of time."""
    flap = LinkFlap(period_s=0.01, down_for_s=0.002, seed=3)

    class _Pipe(_StubPipe):
        class sim:
            now = 0.0

    pipe = _Pipe()
    down = 0
    samples = 20_000
    for i in range(samples):
        _Pipe.sim.now = i * 1e-4  # 100 periods, 200 samples each
        if flap.process(_data_packet(i), pipe, 0, "egress") is None:
            down += 1
    assert 0.15 < down / samples < 0.25


# ---------------------------------------------------------------------------
# Pipeline plumbing on a live topology
# ---------------------------------------------------------------------------
def test_duplication_delivers_extra_copies(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    pipeline = install_faults(a, [Duplication(0.2, seed=5, match=is_data)])
    assert isinstance(pipeline.inner, Transparent)
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    sim.run(until=1.0)
    assert conn.bytes_acked_total == 500_000
    dups = pipeline.recorder.counts["duplicate"]
    assert dups > 0
    # Every duplicate is an extra wire packet the receiver saw.
    assert b.rx_packets > dups


def test_reordering_and_transfer_completes(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    pipeline = install_faults(
        a, [Reordering(0.05, hold_s=200e-6, seed=9, match=is_data)])
    Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    sim.run(until=1.0)
    assert conn.bytes_acked_total == 500_000
    assert pipeline.recorder.counts["reorder"] > 0


# ---------------------------------------------------------------------------
# vSwitch restart and mid-flow resurrection
# ---------------------------------------------------------------------------
def test_vswitch_restart_loses_no_connection(three_hosts):
    """Both the sender's and the receiver's vSwitch lose all flow state
    mid-transfer; the connection survives, entries resurrect, and
    goodput recovers to the same order within 100 ms of virtual time."""
    sim, topo, a, b, c, sw = three_hosts
    vsw_a = AcdcVswitch(a)
    vsw_c = AcdcVswitch(c)
    b.attach_vswitch(AcdcVswitch(b))
    install_faults(a, [VswitchRestart(at=(0.05,))], inner=vsw_a)
    install_faults(c, [VswitchRestart(at=(0.05,))], inner=vsw_c)
    Sink(c, 7000)
    conn = a.connect(c.addr, 7000)
    conn.send_forever()

    sim.run(until=0.0499)  # just before the restart fires at t=0.05
    before = conn.bytes_acked_total
    assert before > 0
    assert vsw_a.restarts == 0 and len(vsw_a.table) > 0

    sim.run(until=0.15)
    assert vsw_a.restarts == 1 and vsw_c.restarts == 1
    # Entries were rebuilt mid-flow on both hosts, with no SYN in sight.
    assert vsw_a.resurrections > 0
    assert vsw_c.resurrections > 0
    assert len(vsw_a.table) > 0
    # The connection never reset and kept moving data.
    after = conn.bytes_acked_total
    assert after > before
    # Recovery criterion: the 100 ms after the restart average at least
    # half the pre-restart rate (pre-restart: 50 ms of slow start + line
    # rate; any entry-resurrection stall longer than ~10 ms would fail).
    pre_rate = before / 0.0499
    post_rate = (after - before) / (0.15 - 0.0499)
    assert post_rate > 0.5 * pre_rate


def test_mid_flow_entry_creation_without_syn(three_hosts):
    """An AC/DC vSwitch attached *after* the handshake (no SYN ever seen)
    builds entries from in-flight traffic and enforces on them."""
    sim, topo, a, b, c, sw = three_hosts
    b.attach_vswitch(AcdcVswitch(b))
    Sink(c, 7000)
    conn = a.connect(c.addr, 7000)
    conn.send_forever()
    sim.run(until=0.02)  # established + flowing, nobody watching a

    vsw_a = AcdcVswitch(a)
    a.attach_vswitch(vsw_a)
    sim.run(until=0.1)
    assert vsw_a.resurrections > 0
    entry = vsw_a.table.entries.get(conn.key())
    assert entry is not None
    # Conntrack seeded itself from mid-flow packets.
    assert entry.conntrack.initialized
    assert entry.conntrack.snd_una is not None
    # And the flow is actually being enforced (windows computed).
    assert entry.enforced_wnd > 0
    assert conn.bytes_acked_total > 0


def test_restart_recorder_cause(three_hosts):
    sim, topo, a, b, c, sw = three_hosts
    vsw_a = AcdcVswitch(a)
    recorder = FaultRecorder()
    install_faults(a, [VswitchRestart(at=(0.01, 0.02))], inner=vsw_a,
                   recorder=recorder)
    for host in (b, c):
        host.attach_vswitch(AcdcVswitch(host))
    Sink(c, 7000)
    conn = a.connect(c.addr, 7000)
    conn.send(1_000_000)
    sim.run(until=0.5)
    assert conn.bytes_acked_total == 1_000_000
    assert vsw_a.restarts == 2
    assert recorder.counts["vswitch_restart"] == 2
