"""Chaos runs are reproducible: one seed, one byte-identical summary.

The whole point of seeded fault injection is that a failure found at a
given (seed, intensity) can be replayed exactly.  These tests run the
chaos experiment twice at reduced scale and require the *entire* result
dictionaries — goodput floats included — to serialise identically.
"""

import json

from repro.experiments import adversarial, chaos
from repro.experiments.common import ACDC


def summary(seed):
    return chaos.run_point(ACDC, 0.05, seed=seed,
                           size_bytes=300_000, duration=0.15)


def test_same_seed_chaos_summary_is_byte_identical():
    a, b = summary(seed=7), summary(seed=7)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    # And it is a non-trivial run: faults actually fired.
    assert a["injected_events"] > 0


def test_different_seed_chaos_run_diverges():
    a, b = summary(seed=7), summary(seed=8)
    assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)


def test_same_seed_adversarial_guard_history_is_identical():
    def point(seed):
        return adversarial.run_point(0.25, True, seed=seed,
                                     n_senders=4, duration=0.08)
    a, b = point(0), point(0)
    assert a["event_signature"] == b["event_signature"]
    assert a["goodputs_bps"] == b["goodputs_bps"]
    assert a["guard_events"] == b["guard_events"]
    # The guard actually acted in this window, so the signature covers a
    # non-empty transition history.
    assert a["guard_events"].get("guard_escalate", 0) > 0
