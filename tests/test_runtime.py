"""Tests for the parallel experiment runtime (specs, cache, pool).

The determinism contract under test: for the same specs, the process-pool
path, the serial path, and a cache hit all return byte-identical results
(canonical JSON), and a warm cache executes nothing.
"""

import json

import pytest

from repro.experiments import fig18_19_incast
from repro.runtime import (
    ResultCache,
    RunSpec,
    Runtime,
    canonical_json,
    canonicalize,
    resolve,
    seed_sweep,
)

# A tiny but real experiment cell: full TCP/vSwitch datapath, ~100 ms sim.
CELL = "repro.experiments.fig18_19_incast:_cell"
CELL_KW = {"scheme": "dctcp", "n_senders": 4, "duration": 0.05,
           "mtu": 1500, "seed": 0}


def double(x):
    """Module-importable helper for cheap runtime tests."""
    return {"x": x, "twice": 2 * x}


# Reference this module the way pytest imported it, so pool workers
# (which inherit sys.path) can re-resolve the helper.
DOUBLE = f"{__name__}:double"


# ---------------------------------------------------------------------------
# Specs: canonical hashing
# ---------------------------------------------------------------------------
def test_spec_key_is_stable_and_order_insensitive():
    a = RunSpec(CELL, {"seed": 1, "duration": 0.1})
    b = RunSpec(CELL, {"duration": 0.1, "seed": 1})
    assert a.key() == b.key()
    assert len(a.key()) == 64  # sha256 hex


def test_spec_key_distinguishes_fn_and_kwargs():
    base = RunSpec(DOUBLE, {"x": 1})
    assert base.key() != RunSpec(DOUBLE, {"x": 2}).key()
    assert base.key() != RunSpec(CELL, {"x": 1}).key()


def test_spec_rejects_non_json_kwargs():
    with pytest.raises(TypeError):
        RunSpec(DOUBLE, {"x": object()}).key()


def test_resolve_validates_references():
    assert resolve(DOUBLE) is double
    with pytest.raises(ValueError):
        resolve("no-colon-here")
    with pytest.raises(ModuleNotFoundError):
        resolve("repro.not_a_module:fn")
    with pytest.raises(AttributeError):
        resolve("repro.runtime:not_a_function")


def test_canonicalize_normalises_tuples():
    assert canonicalize({"a": (1, 2), "b": {"nested": (3,)}}) == \
        {"a": [1, 2], "b": {"nested": [3]}}


def test_seed_sweep_is_seed_major():
    specs = seed_sweep(DOUBLE, [3, 1, 2], {"x": 0})
    assert [s.kwargs["seed"] for s in specs] == [3, 1, 2]


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------
def test_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(DOUBLE, {"x": 21})
    assert cache.get(spec.key()) == (False, None)
    cache.put(spec.key(), spec.describe(), {"x": 21, "twice": 42})
    hit, value = cache.get(spec.key())
    assert hit and value == {"x": 21, "twice": 42}
    assert spec.key() in cache
    assert len(cache) == 1


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(DOUBLE, {"x": 1})
    (tmp_path / f"{spec.key()}.json").write_text("{torn write",
                                                 encoding="utf-8")
    assert cache.get(spec.key()) == (False, None)
    # The runtime recovers by re-running and overwriting the entry.
    rt = Runtime(jobs=1, cache=cache)
    assert rt.run(spec) == {"x": 1, "twice": 2}
    assert cache.get(spec.key())[0]


def test_cache_refuses_non_json_results(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(TypeError):
        cache.put("k" * 64, {"fn": "x"}, {"bad": object()})
    assert len(cache) == 0  # no torn entry left behind


def test_cache_lost_write_race_is_benign(tmp_path):
    import os

    cache = ResultCache(tmp_path)
    spec = RunSpec(DOUBLE, {"x": 3})
    # A concurrent twin holds the O_EXCL temp file for this key.
    tmp = tmp_path / f"{spec.key()}.json.tmp.{os.getpid()}"
    tmp.write_text('{"spec": {}, "result": {"x": 3, "twice": 6}}',
                   encoding="utf-8")
    cache.put(spec.key(), spec.describe(), {"x": 3, "twice": 6})  # no raise
    assert cache.races == 1
    # Entries are content-addressed: once the winner lands, a hit returns
    # the equivalent result.
    os.replace(tmp, tmp_path / f"{spec.key()}.json")
    hit, value = cache.get(spec.key())
    assert hit and value == {"x": 3, "twice": 6}


# ---------------------------------------------------------------------------
# Runtime: ordering, caching, parallel/serial equivalence
# ---------------------------------------------------------------------------
def test_map_returns_results_in_spec_order():
    rt = Runtime(jobs=1)
    results = rt.map([RunSpec(DOUBLE, {"x": i}) for i in (5, 3, 9)])
    assert [r["x"] for r in results] == [5, 3, 9]
    assert rt.stats.executed == 3


def test_warm_cache_skips_completed_runs(tmp_path):
    specs = [RunSpec(DOUBLE, {"x": i}) for i in range(4)]
    cold = Runtime(jobs=1, cache=tmp_path)
    first = cold.map(specs)
    assert cold.stats.executed == 4 and cold.stats.cache_hits == 0
    warm = Runtime(jobs=1, cache=tmp_path)
    second = warm.map(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 4
    assert canonical_json(first) == canonical_json(second)


def test_partial_cache_executes_only_the_gap(tmp_path):
    rt = Runtime(jobs=1, cache=tmp_path)
    rt.map([RunSpec(DOUBLE, {"x": 0}), RunSpec(DOUBLE, {"x": 1})])
    rt2 = Runtime(jobs=1, cache=tmp_path)
    results = rt2.map([RunSpec(DOUBLE, {"x": i}) for i in range(4)])
    assert rt2.stats.cache_hits == 2 and rt2.stats.executed == 2
    assert [r["x"] for r in results] == [0, 1, 2, 3]


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        Runtime(jobs=0)


def test_parallel_results_byte_identical_to_serial(tmp_path):
    """The acceptance-criterion determinism test, on a real datapath cell.

    Two seeds x one (scheme, config) cell: the pool path (2 workers) must
    merge to the same bytes as the serial path, and a warm cache must
    reproduce them again without executing anything.
    """
    specs = [RunSpec(CELL, {**CELL_KW, "seed": seed}) for seed in (0, 1)]
    serial = Runtime(jobs=1).map(specs)
    parallel_rt = Runtime(jobs=2, cache=tmp_path)
    parallel = parallel_rt.map(specs)
    assert parallel_rt.stats.executed == 2
    assert canonical_json(serial) == canonical_json(parallel)
    warm = Runtime(jobs=2, cache=tmp_path)
    cached = warm.map(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 2
    assert canonical_json(cached) == canonical_json(serial)


def test_telemetry_byte_identical_across_serial_pool_and_cache(tmp_path):
    """Telemetry is part of the determinism contract: a traced cell's
    metric snapshot and full trace must be byte-identical whether the
    cell ran serially, in a worker process, or replayed from cache."""
    specs = [RunSpec(CELL, {**CELL_KW, "telemetry": True})]
    serial = Runtime(jobs=1).map(specs)
    pool_rt = Runtime(jobs=2, cache=tmp_path)
    pooled = pool_rt.map(specs)
    assert pool_rt.stats.executed == 1
    warm = Runtime(jobs=2, cache=tmp_path)
    cached = warm.map(specs)
    assert warm.stats.executed == 0 and warm.stats.cache_hits == 1
    assert canonical_json(serial) == canonical_json(pooled)
    assert canonical_json(serial) == canonical_json(cached)
    telemetry = serial[0]["telemetry"]
    assert telemetry["trace"]["recorded"] > 0
    assert telemetry["metrics"]["engine.events_processed"] > 0
    assert serial[0]["trace"], "traced cell must carry its records"
    # The telemetry flag is part of the cache key: the untraced variant
    # is a distinct cell, so no stale hit can cross the boundary.
    assert RunSpec(CELL, {**CELL_KW, "telemetry": True}).key() != \
        RunSpec(CELL, dict(CELL_KW)).key()


def test_figure_level_parallel_matches_serial():
    """fig18/19 via its public multi-seed API: pool == serial, merged
    seed-ordered."""
    kwargs = dict(counts=(4,), duration=0.05, mtu=1500, seeds=[0, 1])
    serial = fig18_19_incast.run(runtime=Runtime(jobs=1), **kwargs)
    parallel = fig18_19_incast.run(runtime=Runtime(jobs=2), **kwargs)
    assert serial["seeds"] == [0, 1]
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)
    # Single-seed call keeps the legacy shape and equals per-seed slice 0.
    single = fig18_19_incast.run(counts=(4,), duration=0.05, mtu=1500, seed=0)
    assert json.dumps(single, sort_keys=True) == \
        json.dumps(serial["per_seed"][0], sort_keys=True)
