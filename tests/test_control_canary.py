"""Canary rollout: SLO-gated promotion, automatic rollback, timeouts.

Includes the PR's acceptance scenario: a pathological RWND clamp staged
on a 25% cohort is detected and rolled back within two epochs, and the
conforming cohort's p99 FCT stays within noise of a no-canary control
run (same seed, same arrival processes).
"""

import pytest

from repro.control import Service, ServiceConfig
from repro.control.canary import CanaryRollout, TenantPolicy
from repro.experiments import canary as canary_experiment


# ---------------------------------------------------------------------------
# State machine (pure unit)
# ---------------------------------------------------------------------------

def fresh_rollout(**overrides):
    defaults = dict(candidate=TenantPolicy(max_rwnd=1460), cohort=["h1"],
                    prior={"h1": TenantPolicy()}, started_epoch=2,
                    promote_after=2, timeout_epochs=4)
    defaults.update(overrides)
    return CanaryRollout(**defaults)


def test_rollout_promotes_after_healthy_streak():
    rollout = fresh_rollout()
    assert rollout.tick(2, [], gradeable=True) == "hold"
    assert rollout.tick(3, [], gradeable=True) == "promote"
    assert rollout.state == "promoted" and rollout.reason == "healthy_streak"


def test_rollout_violation_rolls_back_with_deltas():
    rollout = fresh_rollout()
    deltas = [{"slo": "p99_fct", "canary": 9.0, "baseline": 1.0, "limit": 2.0}]
    assert rollout.tick(2, deltas, gradeable=True) == "rollback"
    assert rollout.state == "rolled_back"
    assert rollout.reason == "slo_violation"
    assert rollout.violations == deltas


def test_ungradeable_epochs_reset_the_streak_and_time_out():
    rollout = fresh_rollout()
    assert rollout.tick(2, [], gradeable=True) == "hold"
    assert rollout.tick(3, [], gradeable=False) == "hold"  # streak resets
    assert rollout.healthy_epochs == 0
    assert rollout.tick(4, [], gradeable=True) == "hold"
    # Epoch 5 is the 4th canary epoch: the timeout fires before a new
    # 2-epoch streak can complete.
    assert rollout.tick(5, [], gradeable=False) == "rollback"
    assert rollout.reason == "timeout"


def test_finished_rollout_refuses_further_ticks():
    rollout = fresh_rollout()
    rollout.abort(3, "abort")
    with pytest.raises(RuntimeError):
        rollout.tick(4, [], gradeable=True)


# ---------------------------------------------------------------------------
# End-to-end service runs
# ---------------------------------------------------------------------------

def test_promotion_rolls_candidate_out_fleet_wide():
    candidate = {"beta": 0.8}
    svc = Service(
        ServiceConfig(n_hosts=4, epoch_s=0.02, arrival_rate_hz=400.0,
                      peers=2, seed=7),
        schedule=[{"epoch": 0, "op": "canary_start", "policy": candidate,
                   "hosts": ["h2"], "promote_after": 2}])
    result = svc.run(4)
    assert result["canary"]["state"] == "promoted"
    assert all(p["beta"] == 0.8 for p in result["policies"].values())
    promotes = [r for r in svc.obs.bus.records()
                if r["type"] == "control.canary" and r["state"] == "promote"]
    assert promotes
    # Promotion blessed the candidate: the kill switch would now restore
    # the *candidate*, not the pre-canary policy.
    assert (svc.control.last_known_good["policies"]["h1"]["beta"] == 0.8)


def test_stuck_canary_times_out_into_rollback():
    # Starve the evaluator: ~1 arrival/host/epoch can never reach the
    # 4-sample floor on a single-host cohort, so every epoch is
    # ungradeable and only the timeout can end the rollout.
    svc = Service(
        ServiceConfig(n_hosts=4, epoch_s=0.01, arrival_rate_hz=100.0,
                      peers=1, msg_sizes=[16_384], msg_weights=[1], seed=7),
        schedule=[{"epoch": 0, "op": "canary_start", "policy": {"beta": 0.9},
                   "hosts": ["h4"], "timeout_epochs": 3}])
    result = svc.run(6)
    assert result["canary"]["state"] == "rolled_back"
    assert result["canary"]["reason"] == "timeout"
    assert result["canary"]["ended_epoch"] == 2
    assert result["policies"]["h4"]["beta"] == 1.0  # prior restored


def test_acceptance_bad_canary_rolls_back_within_two_epochs():
    result = canary_experiment.run(seed=0, quick=True)
    summary = result["summary"]
    assert summary["rolled_back"]
    assert summary["reason"] == "slo_violation"
    assert summary["epochs_to_rollback"] <= 2
    assert any(v["slo"] == "p99_fct" for v in summary["violations"])
    # The conforming cohort must not notice the canary: per-host p99 in
    # the canary run within noise of the no-canary control run.
    ratios = summary["conforming_p99_ratio_per_host"]
    assert ratios
    for addr, ratio in ratios.items():
        assert 0.5 <= ratio <= 1.5, f"{addr} p99 moved {ratio:.2f}x"
    # The control run never canaried anything.
    assert result["control_run"]["canary"] == {"state": "idle"}
    # After rollback the cohort's policy is the pre-canary one.
    for addr in summary["cohort"]:
        assert result["canary_run"]["policies"][addr]["max_rwnd"] is None


def test_rollback_event_carries_violating_slo_deltas():
    svc = Service(
        ServiceConfig(n_hosts=6, epoch_s=0.02, seed=1),
        schedule=[{"epoch": 1, "op": "canary_start",
                   "policy": {"max_rwnd": canary_experiment.BAD_MAX_RWND},
                   "fraction": 0.25}])
    result = svc.run(5)
    assert result["canary"]["state"] == "rolled_back"
    (event,) = [r for r in svc.obs.bus.records()
                if r["type"] == "control.rollback"]
    assert event["sev"] == "warning"
    assert event["reason"] == "slo_violation"
    assert event["cohort"] == result["canary"]["cohort"]
    assert event["violations"], "rollback must explain itself"
    for violation in event["violations"]:
        assert {"slo", "canary", "baseline", "limit"} <= set(violation)
