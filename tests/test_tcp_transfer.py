"""Guest TCP: end-to-end data transfer, delivery, teardown."""

import pytest

from repro.tcp.connection import CLOSED, ESTABLISHED
from repro.workloads.apps import BulkSender, Sink


def open_stream(sim, a, b, opts=None):
    """Connect a->b:7000 with a byte-counting sink; returns (conn, sink)."""
    opts = opts or {}
    sink = Sink(b, 7000, **opts)
    conn = a.connect(b.addr, 7000, **opts)
    return conn, sink


def test_small_transfer_delivers_exactly(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, sink = open_stream(sim, a, b)
    conn.send(5000)
    sim.run(until=0.05)
    assert sink.bytes_received == 5000
    assert conn.snd_una == conn.snd_nxt  # everything acked


def test_multi_segment_transfer(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, sink = open_stream(sim, a, b)
    conn.send(1_000_000)
    sim.run(until=0.2)
    assert sink.bytes_received == 1_000_000
    assert conn.bytes_acked_total == 1_000_000


def test_multiple_writes_accumulate(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, sink = open_stream(sim, a, b)
    for _ in range(10):
        conn.send(1234)
    sim.run(until=0.05)
    assert sink.bytes_received == 12340


def test_send_before_establish_is_queued(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, sink = open_stream(sim, a, b)
    conn.send(10_000)  # state is still SYN_SENT
    sim.run(until=0.05)
    assert sink.bytes_received == 10_000


def test_send_negative_rejected(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, _ = open_stream(sim, a, b)
    with pytest.raises(ValueError):
        conn.send(-1)


def test_unlimited_source_saturates_link(two_hosts_jumbo):
    sim, topo, a, b, _sw = two_hosts_jumbo
    conn, sink = open_stream(sim, a, b)
    conn.send_forever()
    sim.run(until=0.1)
    goodput = sink.bytes_received * 8 / 0.1
    assert goodput > 8e9  # close to the 10 G line rate


def test_on_data_callback_counts_in_order_bytes(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    delivered = []
    Sink(b, 7000)
    server_conns = []
    b.listeners[7000]["on_accept"] = lambda c: server_conns.append(c)
    conn = a.connect(b.addr, 7000)
    sim.run(until=0.005)
    server_conns[0].on_data = delivered.append
    conn.send(50_000)
    sim.run(until=0.05)
    assert sum(delivered) == 50_000


def test_fin_teardown_both_sides(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    accepted = []
    b.listen(7000, on_accept=lambda c: accepted.append(c))
    conn = a.connect(b.addr, 7000)
    conn.send(10_000)
    conn.close()
    sim.run(until=0.2)
    assert conn.state == CLOSED
    assert accepted[0].state == CLOSED
    assert conn.closed_at is not None
    assert accepted[0].bytes_delivered == 10_000


def test_close_flushes_pending_data_first(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, sink = open_stream(sim, a, b)
    conn.send(200_000)
    conn.close()
    sim.run(until=0.2)
    assert sink.bytes_received == 200_000
    assert conn.state == CLOSED


def test_on_close_callback(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, _ = open_stream(sim, a, b)
    closed = []
    conn.on_close = lambda: closed.append(sim.now)
    conn.send(1000)
    conn.close()
    sim.run(until=0.2)
    assert len(closed) == 1


def test_bidirectional_transfer(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    accepted = []
    b.listen(7000, on_accept=lambda c: accepted.append(c))
    conn = a.connect(b.addr, 7000)
    got_at_a = []
    conn.on_data = got_at_a.append
    conn.send(30_000)
    sim.run(until=0.01)
    accepted[0].send(20_000)
    sim.run(until=0.1)
    assert accepted[0].bytes_delivered == 30_000
    assert sum(got_at_a) == 20_000


def test_two_parallel_connections_demuxed(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    sink = Sink(b, 7000)
    c1 = a.connect(b.addr, 7000)
    c2 = a.connect(b.addr, 7000)
    c1.send(1000)
    c2.send(2000)
    sim.run(until=0.05)
    assert sink.bytes_received == 3000
    assert c1.bytes_acked_total == 1000
    assert c2.bytes_acked_total == 2000


def test_bulk_sender_fixed_size_closes(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000)
    flow = BulkSender(sim, a, b.addr, 7000, size_bytes=64_000)
    sim.run(until=0.2)
    assert flow.bytes_acked == 64_000
    assert flow.conn.state == CLOSED


def test_bulk_sender_stop_at(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    Sink(b, 7000)
    flow = BulkSender(sim, a, b.addr, 7000, stop_at=0.02)
    sim.run(until=0.2)
    assert flow.conn.state == CLOSED
    assert flow.bytes_acked > 0


def test_bulk_sender_send_at_defers_data(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    sink = Sink(b, 7000)
    flow = BulkSender(sim, a, b.addr, 7000, send_at=0.05)
    sim.run(until=0.04)
    assert flow.conn.state == ESTABLISHED
    assert sink.bytes_received == 0
    sim.run(until=0.1)
    assert sink.bytes_received > 0
