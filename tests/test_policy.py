"""Unit tests for per-flow policy assignment (§3.4)."""

import pytest

from repro.core.policy import FlowPolicy, PolicyEngine


def test_default_policy_is_enforced_dctcp():
    policy = FlowPolicy()
    assert policy.algorithm == "dctcp"
    assert policy.enforced
    assert policy.beta == 1.0


def test_none_policy_is_passthrough():
    assert not FlowPolicy(algorithm="none").enforced


def test_invalid_algorithm_rejected():
    with pytest.raises(ValueError):
        FlowPolicy(algorithm="bbr")


def test_invalid_beta_rejected():
    with pytest.raises(ValueError):
        FlowPolicy(beta=2.0)


def test_invalid_max_rwnd_rejected():
    with pytest.raises(ValueError):
        FlowPolicy(max_rwnd=0)


def test_engine_default_fallback():
    engine = PolicyEngine()
    assert engine.policy_for(("a", 1, "b", 2)).algorithm == "dctcp"


def test_engine_first_match_wins():
    engine = PolicyEngine()
    engine.add_rule(PolicyEngine.match_dst("b"), FlowPolicy(beta=0.25))
    engine.add_rule(PolicyEngine.match_src("a"), FlowPolicy(beta=0.75))
    assert engine.policy_for(("a", 1, "b", 2)).beta == 0.25
    assert engine.policy_for(("a", 1, "c", 2)).beta == 0.75


def test_match_helpers():
    assert PolicyEngine.match_dst("b")(("a", 1, "b", 2))
    assert not PolicyEngine.match_dst("b")(("a", 1, "c", 2))
    assert PolicyEngine.match_src("a")(("a", 1, "b", 2))
    assert PolicyEngine.match_dport(2)(("a", 1, "b", 2))
    assert PolicyEngine.match_dst_prefix("wan-")(("a", 1, "wan-gw", 2))
    assert not PolicyEngine.match_dst_prefix("wan-")(("a", 1, "dc-h1", 2))


def test_wan_vs_datacenter_split():
    """The paper's §3.4 example: WAN flows keep the host stack, DC flows
    get DCTCP enforcement."""
    engine = PolicyEngine(default=FlowPolicy(algorithm="dctcp"))
    engine.add_rule(PolicyEngine.match_dst_prefix("wan-"),
                    FlowPolicy(algorithm="none"))
    assert not engine.policy_for(("h1", 5, "wan-peer", 80)).enforced
    assert engine.policy_for(("h1", 5, "h2", 80)).enforced
