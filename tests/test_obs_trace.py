"""Unit tests for the structured trace bus (repro.obs.trace)."""

import pytest

from repro.obs import DEBUG, ERROR, INFO, WARNING, TraceBus, TraceConfig
from repro.obs.trace import EVENT_SCHEMAS, format_flow

FLOW = ("10.0.0.1", 10000, "10.0.0.2", 5000)


class FakeSim:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def bus():
    return TraceBus(FakeSim())


def test_emit_records_sim_time_and_fields(bus):
    bus.sim.now = 0.125
    assert bus.emit("flow.state", flow=FLOW, component="vswitch",
                    state="insert")
    (record,) = bus.records()
    assert record == {"t": 0.125, "type": "flow.state", "sev": "info",
                      "component": "vswitch",
                      "flow": "10.0.0.1:10000>10.0.0.2:5000",
                      "state": "insert"}


def test_format_flow_shapes():
    assert format_flow(FLOW) == "10.0.0.1:10000>10.0.0.2:5000"
    assert format_flow(None) is None
    assert format_flow("already-a-string") == "already-a-string"


def test_unbound_bus_refuses_emit():
    bus = TraceBus()
    with pytest.raises(RuntimeError):
        bus.emit("flow.state", state="insert")
    bus.bind(FakeSim())
    assert bus.emit("flow.state", state="insert")


def test_unknown_type_rejected(bus):
    with pytest.raises(KeyError):
        bus.emit("not.a.type", foo=1)


def test_missing_required_field_rejected(bus):
    with pytest.raises(ValueError):
        bus.emit("rwnd.rewrite", flow=FLOW)  # needs wnd_bytes, rewritten


def test_reserved_field_shadow_rejected(bus):
    with pytest.raises(ValueError):
        bus.emit("flow.state", state="x", t=123.0)


def test_validation_can_be_disabled():
    bus = TraceBus(FakeSim(), TraceConfig(validate=False))
    assert bus.emit("flow.state")  # missing "state", but unchecked
    assert len(bus) == 1


def test_severity_filter_counts_filtered():
    bus = TraceBus(FakeSim(), TraceConfig(level=WARNING))
    assert not bus.emit("flow.state", state="insert", severity=INFO)
    assert bus.emit("flow.state", state="restart", severity=WARNING)
    assert bus.emit("flow.state", state="boom", severity=ERROR)
    assert not bus.emit("flow.state", state="debugging", severity=DEBUG)
    assert bus.filtered == 2 and bus.recorded == 2


def test_sampling_keeps_first_and_every_nth():
    bus = TraceBus(FakeSim(), TraceConfig(sample={"ecn.mark": 4}))
    kept = [bus.emit("ecn.mark", direction="egress") for _ in range(9)]
    # counter-based 1-in-4: emissions 0, 4, 8 survive
    assert kept == [True, False, False, False,
                    True, False, False, False, True]
    assert bus.sampled_out == 6 and bus.recorded == 3
    assert bus.summary()["by_type"] == {"ecn.mark": 3}


def test_sampling_is_per_type():
    bus = TraceBus(FakeSim(), TraceConfig(sample={"ecn.mark": 2}))
    bus.emit("flow.state", state="a")
    bus.emit("ecn.mark", direction="egress")
    bus.emit("ecn.mark", direction="egress")  # sampled out
    bus.emit("flow.state", state="b")
    assert [r["type"] for r in bus.records()] == \
        ["flow.state", "ecn.mark", "flow.state"]


def test_max_events_bound_counts_drops():
    bus = TraceBus(FakeSim(), TraceConfig(max_events=2, sample={}))
    for _ in range(5):
        bus.emit("flow.state", state="x")
    assert len(bus) == 2 and bus.dropped == 3
    assert bus.summary()["dropped"] == 3


def test_by_type_and_for_flow(bus):
    other = ("10.0.0.9", 1, "10.0.0.8", 2)
    bus.emit("flow.state", flow=FLOW, state="insert")
    bus.emit("rwnd.rewrite", flow=other, wnd_bytes=100, rewritten=True)
    bus.emit("rwnd.rewrite", flow=FLOW, wnd_bytes=200, rewritten=False)
    assert sorted(bus.by_type()) == ["flow.state", "rwnd.rewrite"]
    mine = bus.for_flow(FLOW)
    assert [e.type for e in mine] == ["flow.state", "rwnd.rewrite"]
    # Accepts the pre-rendered string form too.
    assert bus.for_flow("10.0.0.1:10000>10.0.0.2:5000") == mine


def test_summary_totals_are_consistent():
    bus = TraceBus(FakeSim(), TraceConfig(level=WARNING,
                                          sample={"ecn.mark": 2},
                                          max_events=3))
    for _ in range(4):
        bus.emit("ecn.mark", direction="egress", severity=WARNING)
    bus.emit("flow.state", state="x", severity=INFO)   # filtered
    s = bus.summary()
    assert s["emitted"] == bus.emitted == 5
    assert s["emitted"] == (s["recorded"] + s["filtered"]
                            + s["sampled_out"] + s["dropped"])


def test_every_schema_type_is_emittable():
    bus = TraceBus(FakeSim(), TraceConfig(sample={}))
    filler = {"state": "x", "wnd_bytes": 1, "rewritten": False,
              "direction": "egress", "reason": "r", "kind": "k",
              "cause": "c", "queue_bytes": 0, "invariant": "i",
              "path": "/tmp/x", "op": "set_policy", "status": "applied",
              "key": "0" * 64, "epoch": 1, "bytes": 0, "replayed": 0}
    for type_, required in EVENT_SCHEMAS.items():
        assert bus.emit(type_, **{f: filler[f] for f in required})
    assert len(bus) == len(EVENT_SCHEMAS)
