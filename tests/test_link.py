"""Unit tests for transmit ports (serialization, queueing policies)."""

import pytest

from repro.net.buffer import SharedBuffer
from repro.net.link import HostTxPort, SwitchTxPort, TxPort
from repro.net.packet import ECN_ECT0, ECN_NOT_ECT, Packet
from repro.net.red import EcnMarker


def data(size=980, ecn=ECN_NOT_ECT):
    # payload 960 + 40B headers = `size` wire bytes when size=1000
    return Packet(src="a", dst="b", sport=1, dport=2,
                  payload_len=size - 40, ecn=ecn)


def test_serialization_time(sim, trap):
    port = TxPort(sim, rate_bps=8000.0, delay_s=0.0, peer=trap)
    port.enqueue(data(1000))  # 1000 B at 8 kb/s = 1 s
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert len(trap.packets) == 1


def test_propagation_adds_delay(sim, trap):
    port = TxPort(sim, rate_bps=8000.0, delay_s=0.25, peer=trap)
    port.enqueue(data(1000))
    sim.run()
    assert sim.now == pytest.approx(1.25)


def test_fifo_order_and_back_to_back(sim, trap):
    port = TxPort(sim, rate_bps=8000.0, delay_s=0.0, peer=trap)
    first, second = data(1000), data(1000)
    port.enqueue(first)
    port.enqueue(second)
    sim.run()
    assert [p.pid for p in trap.packets] == [first.pid, second.pid]
    assert sim.now == pytest.approx(2.0)


def test_zero_rate_means_instant(sim, trap):
    port = TxPort(sim, rate_bps=0.0, delay_s=0.0, peer=trap)
    port.enqueue(data())
    sim.run()
    assert sim.now == 0.0
    assert trap.packets


def test_queue_accounting(sim, trap):
    port = TxPort(sim, rate_bps=8000.0, delay_s=0.0, peer=trap)
    for _ in range(3):
        port.enqueue(data(1000))
    # One packet is in serialization (removed from queue), two waiting.
    assert port.queue_packets == 2
    assert port.queue_bytes == 2000
    sim.run()
    assert port.queue_packets == 0
    assert port.queue_bytes == 0


def test_stats_count_tx(sim, trap):
    port = TxPort(sim, rate_bps=1e9, delay_s=0.0, peer=trap)
    for _ in range(5):
        port.enqueue(data(1000))
    sim.run()
    assert port.stats.tx_packets == 5
    assert port.stats.tx_bytes == 5000
    assert port.stats.drop_rate == 0.0


def test_negative_rate_rejected(sim):
    with pytest.raises(ValueError):
        TxPort(sim, rate_bps=-1, delay_s=0)


def test_host_port_never_drops(sim, trap):
    port = HostTxPort(sim, rate_bps=1e6, delay_s=0.0, peer=trap)
    for _ in range(1000):
        assert port.enqueue(data(1000))
    assert port.stats.dropped_packets == 0


# ---------------------------------------------------------------------------
# Switch port: shared buffer + marking
# ---------------------------------------------------------------------------
def make_switch_port(sim, trap, capacity=10_000, k=2_000, enabled=True):
    shared = SharedBuffer(capacity, dt_alpha=100.0)
    marker = EcnMarker(enabled=enabled, threshold_bytes=k)
    port = SwitchTxPort(sim, rate_bps=8000.0, delay_s=0.0,
                        shared=shared, marker=marker, queue_id=0, peer=trap)
    return port, shared, marker


def test_switch_port_tail_drop_on_full_buffer(sim, trap):
    port, shared, _ = make_switch_port(sim, trap, capacity=2_500, enabled=False)
    results = [port.enqueue(data(1000)) for _ in range(4)]
    assert results == [True, True, False, False]
    assert port.stats.dropped_packets == 2


def test_switch_port_releases_buffer_on_dequeue(sim, trap):
    port, shared, _ = make_switch_port(sim, trap, enabled=False)
    port.enqueue(data(1000))
    assert shared.used == 1000
    sim.run()
    assert shared.used == 0


def test_switch_port_marks_ect_above_threshold(sim, trap):
    port, _, marker = make_switch_port(sim, trap, k=1_500)
    port.enqueue(data(1000, ECN_ECT0))   # queue 0 -> no mark
    port.enqueue(data(1000, ECN_ECT0))   # queue 1000 -> no mark
    port.enqueue(data(1000, ECN_ECT0))   # queue 2000 >= K -> mark
    sim.run()
    marked = [p for p in trap.packets if p.ce]
    assert len(marked) == 1
    assert port.stats.marked_packets == 1


def test_mark_then_drop_neither_stamps_nor_counts(sim, trap):
    # Queue parked above K while the shared buffer is exactly full: the
    # arriving ECT packet earns a mark verdict but fails admission.  It
    # must count as a drop only — no CE stamp, no marker/port mark stats.
    port, shared, marker = make_switch_port(sim, trap, capacity=2_000, k=900)
    assert port.enqueue(data(1000, ECN_ECT0))       # queue 0 -> no mark
    assert port.enqueue(data(1000, ECN_ECT0))       # queue 1000 > K -> marked
    assert marker.marked_packets == 1
    victim = data(1000, ECN_ECT0)                   # queue 2000 > K, buffer full
    assert not port.enqueue(victim)
    assert victim.ecn == ECN_ECT0                   # no bogus CE stamp
    assert port.stats.dropped_packets == 1
    assert port.stats.marked_packets == 1           # unchanged by the drop
    assert marker.marked_packets == 1
    sim.run()
    # The admitted-and-marked packet (and only it) carried CE to the peer.
    assert sum(1 for p in trap.packets if p.ce) == 1


def test_switch_port_drops_nonect_above_ramp(sim, trap):
    port, _, _ = make_switch_port(sim, trap, k=1_000)
    port.enqueue(data(1000, ECN_NOT_ECT))
    port.enqueue(data(1000, ECN_NOT_ECT))   # queue 1000 -> on the ramp
    port.enqueue(data(1000, ECN_NOT_ECT))   # queue 2000 -> beyond ramp top
    # The third is a certain drop (>= 1.25*K); the second is probabilistic.
    assert port.stats.dropped_packets >= 1
