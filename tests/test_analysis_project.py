"""Project-model unit tests: module naming, import graph, closures."""

import os
import textwrap

from repro.analysis.project import (ProjectConfig, build_project,
                                    module_name_for, summarize_source)


def write_pkg(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


_TREE = {
    "pkg/__init__.py": "",
    "pkg/a.py": "VALUE = 1\n",
    "pkg/b.py": "from .a import VALUE\n",
    "pkg/sub/__init__.py": "",
    "pkg/sub/c.py": "from ..b import VALUE\nimport os\n",
    "pkg/d.py": "X = 2\n",
}


def test_module_name_walks_init_chain(tmp_path):
    write_pkg(tmp_path, _TREE)
    name, is_pkg = module_name_for(str(tmp_path / "pkg" / "sub" / "c.py"))
    assert (name, is_pkg) == ("pkg.sub.c", False)
    name, is_pkg = module_name_for(str(tmp_path / "pkg" / "__init__.py"))
    assert (name, is_pkg) == ("pkg", True)


def test_import_graph_and_reverse_closure(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    project, stats = build_project([str(root)])
    assert stats.errors == []
    assert set(project.modules) == {
        "pkg", "pkg.a", "pkg.b", "pkg.sub", "pkg.sub.c", "pkg.d"}
    assert project.imports["pkg.b"] == {"pkg.a"}
    # stdlib edges (os) are dropped; only analyzed modules appear.
    assert project.imports["pkg.sub.c"] == {"pkg.b"}
    assert project.reverse_closure(["pkg.a"]) == {
        "pkg.a", "pkg.b", "pkg.sub.c"}
    assert project.reachable_from(["pkg.sub.c"]) == {
        "pkg.sub.c", "pkg.b", "pkg.a"}
    assert "pkg.d" not in project.reverse_closure(["pkg.a"])


def test_summary_reuse_skips_parsing(tmp_path):
    root = write_pkg(tmp_path, _TREE)
    project, stats = build_project([str(root)])
    assert sorted(stats.parsed) == sorted(project.modules)
    cached = {os.path.abspath(summary.path): summary.to_json()
              for summary in project.modules.values()}
    _again, stats2 = build_project([str(root)], cached=cached)
    assert stats2.parsed == []
    assert sorted(stats2.reused) == sorted(project.modules)


def test_parse_error_is_reported_not_fatal(tmp_path):
    root = write_pkg(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/ok.py": "X = 1\n",
        "pkg/broken.py": "def f(:\n",
    })
    project, stats = build_project([str(root)])
    assert "pkg.ok" in project.modules
    assert "pkg.broken" not in project.modules
    assert len(stats.errors) == 1
    assert "parse error" in stats.errors[0][1]


def test_event_schema_extraction(tmp_path):
    summary = summarize_source(textwrap.dedent("""\
        EVENT_SCHEMAS = {
            "a.b": ("x", "y"),
            "c.d": (),
        }
        """), str(tmp_path / "trace.py"), ProjectConfig())
    assert summary.facts["event_schemas"] == {"a.b": ["x", "y"], "c.d": []}
    assert summary.facts["event_schema_lines"]["a.b"] == 2


def test_emit_site_extraction(tmp_path):
    summary = summarize_source(textwrap.dedent("""\
        def go(bus, kw):
            bus.emit("a.b", x=1, y=2)
            bus.emit("c.d", **kw)
            bus.emit(kw["type"])
        """), str(tmp_path / "m.py"), ProjectConfig())
    emits = summary.facts["emits"]
    assert [e["type"] for e in emits] == ["a.b", "c.d", None]
    assert emits[0]["fields"] == ["x", "y"]
    assert emits[0]["has_star"] is False
    assert emits[1]["has_star"] is True
