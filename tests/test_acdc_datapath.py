"""Integration tests for the AC/DC vSwitch datapath (§3, §4).

Two hosts on one ECN-marking switch; both run AC/DC.  Real guest TCP
traffic flows through the full pipeline and we assert on the state the
datapath builds and the rewrites it performs.
"""

import pytest

from repro.core import AcdcConfig, AcdcVswitch, FlowPolicy, PolicyEngine
from repro.net.packet import ECN_NOT_ECT
from repro.workloads.apps import Sink


def acdc_pair(two_hosts, config=None, policy=None, config_b=None):
    sim, topo, a, b, sw = two_hosts
    vsw_a = AcdcVswitch(a, config=config, policy=policy)
    vsw_b = AcdcVswitch(b, config=config_b or config, policy=policy)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    return sim, a, b, sw, vsw_a, vsw_b


def transfer(sim, a, b, nbytes=500_000, until=0.2, conn_opts=None):
    sink = Sink(b, 7000, **(conn_opts or {}))
    conn = a.connect(b.addr, 7000, **(conn_opts or {}))
    conn.send(nbytes)
    sim.run(until=until)
    return conn, sink


def test_syn_creates_entries_both_directions(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=1000, until=0.01)
    key = conn.key()
    rkey = (key[2], key[3], key[0], key[1])
    assert key in vsw_a.table.entries and rkey in vsw_a.table.entries
    assert key in vsw_b.table.entries and rkey in vsw_b.table.entries


def test_window_scale_snooped_from_handshake(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=1000, until=0.01,
                       conn_opts={"wscale": 7})
    entry = vsw_a.table.entries[conn.key()]
    # a's sender entry needs b's announced scale (7, from the listener's
    # conn_opts applied on accept).
    assert entry.peer_wscale == 7


def test_conntrack_matches_guest_state(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=200_000, until=0.1)
    ct = vsw_a.table.entries[conn.key()].conntrack
    assert ct.snd_una == conn.snd_una
    assert ct.snd_nxt == conn.snd_nxt


def test_rwnd_rewritten_on_acks(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=2_000_000, until=0.1)
    entry = vsw_a.table.entries[conn.key()]
    assert entry.enforcer.rewrites > 0
    # The guest's view of the peer window equals the enforced window
    # (modulo window-scale rounding).
    assert conn.peer_rwnd <= entry.enforced_wnd + (1 << conn.peer_wscale)


def test_enforced_window_caps_inflight(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send_forever()
    worst = {"excess": 0}

    def probe(c):
        entry = vsw_a.table.entries.get(c.key())
        if entry is not None:
            worst["excess"] = max(worst["excess"],
                                  c.bytes_in_flight - entry.enforced_wnd)

    conn.window_probe = probe
    sim.run(until=0.1)
    assert worst["excess"] <= 2 * conn.mss  # scale rounding + one segment


def test_ecn_feedback_hidden_from_vm(three_hosts):
    """An ECN-capable guest under AC/DC must never see CE or ECE.

    Two senders share the receiver's downlink so the queue actually
    crosses the marking threshold.
    """
    sim, topo, a, b, c, sw = three_hosts
    for host in (a, b, c):
        host.attach_vswitch(AcdcVswitch(host))
    opts = {"ecn": True, "cc": "cubic"}
    Sink(c, 7000, **opts)
    conns = []
    for src in (a, b):
        conn = src.connect(c.addr, 7000, **opts)
        conn.send_forever()
        conns.append(conn)
    sim.run(until=0.1)
    assert sw.marker.marked_packets > 0     # congestion did happen
    for conn in conns:
        assert conn.ecn_reduce_point == 0   # VM never reacted to ECE
        assert not conn.ece_latched


def test_pack_stripped_before_vm(two_hosts):
    """PACK options must not leak to guest connections."""
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    leaked = []
    orig_deliver = a.deliver

    def checking_deliver(pkt):
        if pkt.pack is not None:
            leaked.append(pkt)
        orig_deliver(pkt)

    a.deliver = checking_deliver
    transfer(sim, a, b, nbytes=500_000, until=0.1)
    assert not leaked


def test_feedback_flows_via_packs(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=1_000_000, until=0.1)
    entry_b = vsw_b.table.entries[conn.key()]   # receiver role at b
    assert entry_b.receiver_feedback.total_bytes == 1_000_000
    assert entry_b.receiver_feedback.packs_attached > 0
    entry_a = vsw_a.table.entries[conn.key()]
    assert entry_a.feedback_reader.last_total == 1_000_000


def test_fack_only_mode_consumes_facks(two_hosts):
    config = AcdcConfig(feedback_mode="fack-only")
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts, config=config)
    conn, _ = transfer(sim, a, b, nbytes=500_000, until=0.1)
    entry_b = vsw_b.table.entries[conn.key()]
    assert entry_b.receiver_feedback.facks_created > 0
    assert entry_b.receiver_feedback.packs_attached == 0
    # FACKs were consumed at a's vSwitch, never reaching the guest, yet
    # the feedback arrived.
    entry_a = vsw_a.table.entries[conn.key()]
    assert entry_a.feedback_reader.last_total == 500_000


def test_log_only_mode_never_rewrites(two_hosts):
    samples = []
    config = AcdcConfig(log_only=True)
    sim, topo, a, b, sw = two_hosts
    vsw_a = AcdcVswitch(a, config=config,
                        window_cb=lambda k, t, w: samples.append(w))
    vsw_b = AcdcVswitch(b, config=config)
    a.attach_vswitch(vsw_a)
    b.attach_vswitch(vsw_b)
    conn, _ = transfer(sim, a, b, nbytes=1_000_000, until=0.1,
                       conn_opts={"cc": "dctcp", "ecn": True})
    entry = vsw_a.table.entries[conn.key()]
    assert entry.enforcer.rewrites == 0
    assert samples, "window callback must still fire"
    # The guest kept its own ECN feedback loop (host DCTCP in charge).
    assert conn.peer_rwnd > entry.enforced_wnd or conn.ecn_ok


def test_policing_drops_cheater_excess(three_hosts):
    """A stack that ignores RWND is policed once congestion shrinks the
    enforced window below what the cheater keeps in flight."""
    sim, topo, a, b, c, sw = three_hosts
    config = AcdcConfig(police=True, policing_slack_segments=1)
    vsw = {}
    for host in (a, b, c):
        vsw[host.addr] = AcdcVswitch(host, config=config)
        host.attach_vswitch(vsw[host.addr])
    Sink(c, 7000)
    cheat = a.connect(c.addr, 7000, ignore_rwnd=True)
    cheat.send_forever()
    honest = b.connect(c.addr, 7000)
    honest.send_forever()
    sim.run(until=0.1)
    assert vsw[a.addr].policer.drops > 0


def test_policing_spares_conforming_flows(two_hosts):
    config = AcdcConfig(police=True)
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts, config=config)
    conn, sink = transfer(sim, a, b, nbytes=2_000_000, until=0.2)
    assert vsw_a.policer.drops == 0
    assert sink.bytes_received == 2_000_000


def test_non_enforced_policy_passthrough(two_hosts):
    policy = PolicyEngine(default=FlowPolicy(algorithm="none"))
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts, policy=policy)
    conn, sink = transfer(sim, a, b, nbytes=500_000, until=0.1)
    entry = vsw_a.table.entries[conn.key()]
    assert entry.enforcer.rewrites == 0
    assert sink.bytes_received == 500_000
    # Passthrough flows keep their packets non-ECT on the wire.
    assert sw.marker.marked_packets == 0


def test_fin_marks_entries_for_gc(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(
        two_hosts, config=AcdcConfig(gc_interval=0.2))
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(10_000)
    conn.close()
    sim.run(until=0.1)
    assert vsw_a.table.entries[conn.key()].fin_seen
    sim.run(until=2.5)
    assert conn.key() not in vsw_a.table.entries


def test_send_window_update_reaches_vm(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=100_000, until=0.1)
    entry = vsw_a.table.entries[conn.key()]
    entry.enforced_wnd = 4321 << 9  # something recognisable
    assert vsw_a.send_window_update(conn.key())
    sim.run(until=0.11)
    assert conn.peer_rwnd >= 4321 << 9


def test_send_dupacks_triggers_fast_retransmit(two_hosts):
    """The §3.3 flexibility: fabricated dupacks wake a stuck sender."""
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=100_000, until=0.05)
    before = conn.fast_retransmits
    # Pretend the flow has unacked data, then inject 3 dupacks.
    conn.snd_nxt = conn.snd_una + 3 * conn.mss
    entry = vsw_a.table.entries[conn.key()]
    entry.conntrack.snd_una = conn.snd_una
    assert vsw_a.send_dupacks(conn.key(), count=3)
    sim.run(until=0.06)
    assert conn.fast_retransmits == before + 1


def test_inactivity_timeout_cuts_window(two_hosts):
    """§3.1: snd_una < snd_nxt and the inactivity timer fires => loss."""
    config = AcdcConfig(inactivity_timeout=0.005)
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts, config=config)
    conn, _ = transfer(sim, a, b, nbytes=50_000, until=0.05)
    entry = vsw_a.table.entries[conn.key()]
    # Fake outstanding data, then let the timer fire with no ACKs.
    entry.conntrack.snd_nxt = entry.conntrack.snd_una + 10_000
    entry.vswitch_cc.wnd = 50 * a.mss
    vsw_a._arm_inactivity(entry)
    wnd_before = entry.vswitch_cc.window_bytes
    sim.run(until=0.1)
    assert entry.vswitch_cc.alpha == 1.0
    assert entry.vswitch_cc.window_bytes < wnd_before


def test_ops_counted(two_hosts):
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    transfer(sim, a, b, nbytes=100_000, until=0.1)
    counts = vsw_a.ops.snapshot()
    for op in ("flow_lookup", "forward", "seq_update", "cc_update",
               "ecn_mark", "rwnd_rewrite"):
        assert counts.get(op, 0) > 0, op


def test_proactive_window_update_on_inferred_timeout(two_hosts):
    """With proactive updates on, an inferred timeout pushes the reduced
    window straight to the VM instead of waiting for the next ACK."""
    config = AcdcConfig(inactivity_timeout=0.005,
                        proactive_window_updates=True)
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts, config=config)
    conn, _ = transfer(sim, a, b, nbytes=50_000, until=0.05)
    entry = vsw_a.table.entries[conn.key()]
    entry.conntrack.snd_nxt = entry.conntrack.snd_una + 10_000
    entry.vswitch_cc.wnd = 50 * a.mss
    big_before = 40 * a.mss
    conn.peer_rwnd = big_before
    vsw_a._arm_inactivity(entry)
    sim.run(until=0.1)
    # The VM's view of the peer window shrank without any real ACK.
    assert conn.peer_rwnd < big_before
    assert conn.peer_rwnd <= entry.enforced_wnd + (1 << conn.peer_wscale)


def test_no_window_scaling_still_enforced(two_hosts):
    """wscale=0 guests: the 16-bit RWND field still carries enforcement
    (clamped at 65535 bytes)."""
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    sink = Sink(b, 7000, wscale=0)
    conn = a.connect(b.addr, 7000, wscale=0)
    conn.send_forever()
    sim.run(until=0.1)
    entry = vsw_a.table.entries[conn.key()]
    assert entry.peer_wscale == 0
    assert conn.peer_rwnd <= 0xFFFF
    assert conn.bytes_acked_total > 0


def test_partial_deployment_degrades_gracefully(two_hosts):
    """Receiver host without AC/DC: no PACK feedback ever arrives, so the
    sender-side window simply grows (no enforcement) but traffic flows."""
    sim, topo, a, b, sw = two_hosts
    vsw_a = AcdcVswitch(a)
    a.attach_vswitch(vsw_a)   # b runs no vSwitch at all
    sink = Sink(b, 7000)
    conn = a.connect(b.addr, 7000)
    conn.send(500_000)
    sim.run(until=0.2)
    assert sink.bytes_received == 500_000
    entry = vsw_a.table.entries[conn.key()]
    assert entry.feedback_reader.last_total == 0  # no PACKs came back


def test_pack_overflowing_mtu_becomes_fack(two_hosts):
    """§3.2: if attaching the PACK would exceed the MTU (e.g. on a
    piggy-backed ACK carrying payload), a dedicated FACK is sent instead
    and the original packet goes out unmodified."""
    from repro.net.packet import Packet
    sim, a, b, sw, vsw_a, vsw_b = acdc_pair(two_hosts)
    conn, _ = transfer(sim, a, b, nbytes=50_000, until=0.05)
    entry_b = vsw_b.table.entries[conn.key()]
    assert entry_b.receiver_feedback.total_bytes > 0
    facks_before = entry_b.receiver_feedback.facks_created
    wire_before = b.tx_packets
    # An ACK from b whose payload leaves no room for the 8-byte option.
    fat_ack = Packet(src=b.addr, sport=7000, dst=a.addr, dport=conn.lport,
                     ack=True, ack_seq=conn.snd_nxt,
                     payload_len=b.mtu - 40)  # headers fill the rest
    out = vsw_b.egress(fat_ack)
    assert out is not None and out.pack is None  # left unmodified
    sim.run(until=0.06)
    assert entry_b.receiver_feedback.facks_created == facks_before
    # (payload > 0 packets take the data path; craft a pure ACK instead)
    thin_but_full = Packet(src=b.addr, sport=7000, dst=a.addr,
                           dport=conn.lport, ack=True,
                           ack_seq=conn.snd_nxt, payload_len=0)
    thin_but_full.payload_len = 0
    # Shrink the MTU seen by the vSwitch to force the overflow path.
    vsw_b.mtu = 45
    out = vsw_b.egress(thin_but_full)
    assert out is not None and out.pack is None
    assert entry_b.receiver_feedback.facks_created == facks_before + 1
