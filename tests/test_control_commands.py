"""Command validation and all-or-nothing application (repro.control)."""

import pytest

from repro.control import Service, ServiceConfig, TenantPolicy
from repro.control.commands import CommandError, command_shape


def tiny_service(**overrides):
    defaults = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=100.0,
                    msg_sizes=[16_384], msg_weights=[1], peers=1, seed=3)
    defaults.update(overrides)
    return Service(ServiceConfig(**defaults))


# ---------------------------------------------------------------------------
# TenantPolicy / shape parsing
# ---------------------------------------------------------------------------

def test_tenant_policy_round_trips():
    policy = TenantPolicy(algorithm="reno", beta=0.5, max_rwnd=10_000)
    assert TenantPolicy.from_json(policy.to_json()) == policy


@pytest.mark.parametrize("raw, fragment", [
    ("not-a-dict", "must be an object"),
    ({"algorithm": "warp"}, "invalid policy"),
    ({"beta": 7.0}, "invalid policy"),
    ({"max_rwnd": -4}, "invalid policy"),
    ({"algorithm": "dctcp", "extra": 1}, "unknown policy field"),
])
def test_tenant_policy_rejections(raw, fragment):
    with pytest.raises(CommandError, match=fragment):
        TenantPolicy.from_json(raw)


@pytest.mark.parametrize("raw, fragment", [
    ([], "must be an object"),
    ({"op": "set_policy"}, "epoch must be"),
    ({"epoch": -1, "op": "set_policy"}, "epoch must be"),
    ({"epoch": True, "op": "set_policy"}, "epoch must be"),
    ({"epoch": 0, "op": "reboot"}, "unknown op"),
])
def test_command_shape_rejections(raw, fragment):
    with pytest.raises(CommandError, match=fragment):
        command_shape(raw)


# ---------------------------------------------------------------------------
# Queue-level rejection (malformed commands never enter the queue)
# ---------------------------------------------------------------------------

def test_malformed_submit_is_logged_not_queued():
    svc = tiny_service()
    svc.control.submit("garbage")
    svc.control.submit({"epoch": 0, "op": "reboot"})
    assert [e["status"] for e in svc.control.log] == ["rejected"] * 2
    assert svc.control.drain(99) == []  # nothing was queued
    kinds = [r for r in svc.obs.bus.records()
             if r["type"] == "control.command"]
    assert all(r["status"] == "rejected" and r["reason"] for r in kinds)


# ---------------------------------------------------------------------------
# set_policy
# ---------------------------------------------------------------------------

def test_set_policy_rejects_unknown_host_and_applies_nothing():
    svc = tiny_service()
    before = dict(svc.control.intended)
    svc.control.submit({"epoch": 0, "op": "set_policy",
                        "hosts": ["h1", "mystery"],
                        "policy": {"max_rwnd": 9000}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "rejected"
    assert "mystery" in outcome["reason"]
    assert svc.control.intended == before


def test_set_policy_rejects_unknown_fields_and_missing_policy():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "set_policy",
                        "policy": {}, "bogus": 1})
    svc.control.submit({"epoch": 0, "op": "set_policy"})
    first, second = svc.control.drain(0)
    assert first["status"] == "rejected" and "bogus" in first["reason"]
    assert second["status"] == "rejected" and "policy" in second["reason"]


def test_set_policy_applies_to_named_hosts_only():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "set_policy", "hosts": ["h2"],
                        "policy": {"max_rwnd": 9000}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied"
    assert svc.control.intended["h2"].max_rwnd == 9000
    assert svc.control.intended["h1"].max_rwnd is None
    assert svc.vswitches["h2"].policy.default.max_rwnd == 9000


def test_set_policy_conflicts_with_active_canary_cohort():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {"max_rwnd": 9000}, "hosts": ["h3"]})
    svc.control.drain(0)
    svc.control.submit({"epoch": 1, "op": "set_policy", "hosts": ["h3"],
                        "policy": {"beta": 0.5}})
    svc.control.submit({"epoch": 1, "op": "set_policy", "hosts": ["h1"],
                        "policy": {"beta": 0.5}})
    clash, ok = svc.control.drain(1)
    assert clash["status"] == "rejected" and "canary" in clash["reason"]
    assert ok["status"] == "applied"


# ---------------------------------------------------------------------------
# set_guard
# ---------------------------------------------------------------------------

def test_set_guard_requires_guard_mode():
    svc = tiny_service(guard=False)
    svc.control.submit({"epoch": 0, "op": "set_guard",
                        "params": {"clean_windows": 5}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "rejected"
    assert "not enabled" in outcome["reason"]


def test_set_guard_applies_to_every_host():
    svc = tiny_service(guard=True)
    svc.control.submit({"epoch": 0, "op": "set_guard",
                        "params": {"clean_windows": 7,
                                   "suspect_violation_rate": 0.1}})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "applied"
    for guard in svc.guards.values():
        assert guard.config.clean_windows == 7
        assert guard.config.suspect_violation_rate == 0.1


@pytest.mark.parametrize("params", [
    {"clean_windows": 5, "seed": 9},          # immutable field mixed in
    {"clean_windows": 5, "nonsense": 1},      # unknown field mixed in
    {"clean_windows": -3},                    # invalid value
])
def test_set_guard_is_all_or_nothing(params):
    svc = tiny_service(guard=True)
    before = {a: g.config.clean_windows for a, g in svc.guards.items()}
    svc.control.submit({"epoch": 0, "op": "set_guard", "params": params})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "rejected"
    # The valid half of the change must not have leaked onto any host.
    assert {a: g.config.clean_windows
            for a, g in svc.guards.items()} == before


# ---------------------------------------------------------------------------
# canary_start / canary_abort / kill_switch
# ---------------------------------------------------------------------------

def test_canary_start_validation():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "canary_start"})
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {}, "fraction": 1.5})
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {}, "hosts": ["h1", "h2", "h3", "h4"]})
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {}, "promote_after": 0})
    outcomes = svc.control.drain(0)
    assert [o["status"] for o in outcomes] == ["rejected"] * 4
    reasons = " | ".join(o["reason"] for o in outcomes)
    assert "candidate policy" in reasons and "fraction" in reasons
    assert "baseline" in reasons and "promote_after" in reasons


def test_second_canary_while_active_is_rejected():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {"max_rwnd": 9000}, "fraction": 0.25})
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {"max_rwnd": 5000}, "fraction": 0.25})
    first, second = svc.control.drain(0)
    assert first["status"] == "applied"
    assert second["status"] == "rejected"
    assert "already active" in second["reason"]


def test_canary_abort_without_rollout_is_rejected():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "canary_abort"})
    (outcome,) = svc.control.drain(0)
    assert outcome["status"] == "rejected"
    assert "no active canary" in outcome["reason"]


def test_canary_abort_restores_prior_policy():
    svc = tiny_service()
    svc.control.submit({"epoch": 0, "op": "canary_start",
                        "policy": {"max_rwnd": 9000}, "hosts": ["h2"]})
    svc.control.drain(0)
    assert svc.control.intended["h2"].max_rwnd == 9000
    svc.control.submit({"epoch": 1, "op": "canary_abort"})
    (outcome,) = svc.control.drain(1)
    assert outcome["status"] == "applied"
    assert svc.control.rollout.state == "rolled_back"
    assert svc.control.rollout.reason == "abort"
    assert svc.control.intended["h2"].max_rwnd is None


def test_kill_switch_reverts_policy_and_guard_state():
    svc = tiny_service(guard=True)
    svc.control.submit({"epoch": 0, "op": "set_guard",
                        "params": {"clean_windows": 9}})
    svc.control.drain(0)
    # clean_windows=9 was applied outside a canary: it IS known-good now.
    svc.control.submit({"epoch": 1, "op": "canary_start",
                        "policy": {"max_rwnd": 9000}, "hosts": ["h1"]})
    svc.control.drain(1)
    svc.control.submit({"epoch": 2, "op": "kill_switch"})
    (outcome,) = svc.control.drain(2)
    assert outcome["status"] == "applied"
    assert svc.control.rollout.state == "rolled_back"
    assert svc.control.rollout.reason == "kill_switch"
    assert all(p.max_rwnd is None for p in svc.control.intended.values())
    assert all(g.config.clean_windows == 9 for g in svc.guards.values())
    rollbacks = [r for r in svc.obs.bus.records()
                 if r["type"] == "control.rollback"]
    assert rollbacks and rollbacks[-1]["reason"] == "kill_switch"
