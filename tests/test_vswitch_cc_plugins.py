"""Tests for the pluggable vSwitch congestion controls (reno, cubic)."""

import pytest

from repro.core import (
    VSWITCH_CC_REGISTRY,
    AcdcVswitch,
    FlowPolicy,
    PolicyEngine,
    VswitchCubic,
    VswitchDctcp,
    VswitchReno,
    make_vswitch_cc,
)
from repro.workloads.apps import Sink

MSS = 1460


def test_registry_names():
    assert set(VSWITCH_CC_REGISTRY) == {"dctcp", "reno", "cubic"}


def test_make_vswitch_cc_dispatch():
    assert isinstance(make_vswitch_cc("dctcp", mss=MSS), VswitchDctcp)
    assert isinstance(make_vswitch_cc("reno", mss=MSS), VswitchReno)
    assert isinstance(make_vswitch_cc("cubic", mss=MSS), VswitchCubic)
    with pytest.raises(ValueError):
        make_vswitch_cc("bbr", mss=MSS)


def test_policy_accepts_new_algorithms():
    assert FlowPolicy(algorithm="reno").enforced
    assert FlowPolicy(algorithm="cubic").enforced


# ---------------------------------------------------------------------------
# VswitchReno unit behaviour
# ---------------------------------------------------------------------------
def test_vswitch_reno_slow_start_and_avoidance():
    cc = VswitchReno(mss=MSS)
    cc.on_ack(MSS, 11 * MSS, MSS, MSS, 0, loss=False)
    assert cc.window_bytes == 11 * MSS  # slow start: +acked
    cc.ssthresh = cc.wnd
    start = cc.window_bytes
    una = MSS
    for _ in range(11):
        una += MSS
        cc.on_ack(una, una + 11 * MSS, MSS, MSS, 0, loss=False)
    assert 0.7 * MSS <= cc.window_bytes - start <= 1.6 * MSS


def test_vswitch_reno_halves_on_loss_and_on_mark():
    for signal in ("loss", "mark"):
        cc = VswitchReno(mss=MSS)
        cc.wnd = 64.0 * MSS
        cc.on_ack(0, 64 * MSS, 0, MSS,
                  MSS if signal == "mark" else 0,
                  loss=(signal == "loss"))
        assert cc.window_bytes == 32 * MSS, signal
        # Once per window only.
        cc.on_ack(MSS, 64 * MSS, 0, MSS, MSS, loss=False)
        assert cc.window_bytes == 32 * MSS, signal


def test_vswitch_reno_timeout_slow_start_restart():
    cc = VswitchReno(mss=MSS)
    cc.wnd = 40.0 * MSS
    cc.on_timeout(0, 40 * MSS)
    assert cc.window_bytes == MSS
    assert cc.ssthresh == 20 * MSS


def test_vswitch_cc_floors_and_caps():
    cc = VswitchReno(mss=MSS, min_wnd_bytes=500, max_wnd_bytes=5 * MSS)
    cc.wnd = 0.0
    assert cc.window_bytes == 500
    cc.wnd = 100.0 * MSS
    assert cc.window_bytes == 5 * MSS


# ---------------------------------------------------------------------------
# VswitchCubic unit behaviour
# ---------------------------------------------------------------------------
def test_vswitch_cubic_cut_factor():
    cc = VswitchCubic(mss=MSS)
    cc.wnd = 100.0 * MSS
    cc.ssthresh = cc.wnd
    cc.on_ack(0, 100 * MSS, 0, 0, 0, loss=True)
    assert cc.window_bytes == pytest.approx(70 * MSS, rel=0.01)
    assert cc.w_max == pytest.approx(100.0)


def test_vswitch_cubic_grows_back_past_wmax():
    cc = VswitchCubic(mss=MSS, rtt_estimate_s=1e-3)
    cc.wnd = 70.0 * MSS
    cc.ssthresh = cc.wnd
    cc.w_max = 100.0
    una = 0
    for _ in range(12_000):
        una += MSS
        cc.on_ack(una, una + int(cc.wnd), MSS, MSS, 0, loss=False)
    # Grows at least at the TCP-friendly (Reno-equivalent) rate and
    # crosses the previous W_max.
    assert cc.window_bytes > 100 * MSS


def test_vswitch_cubic_monotone_between_cuts():
    cc = VswitchCubic(mss=MSS)
    cc.wnd = 20.0 * MSS
    cc.ssthresh = cc.wnd
    una, last = 0, cc.window_bytes
    for _ in range(500):
        una += MSS
        cc.on_ack(una, una + int(cc.wnd), MSS, MSS, 0, loss=False)
        assert cc.window_bytes >= last
        last = cc.window_bytes


# ---------------------------------------------------------------------------
# Datapath integration: per-flow algorithm assignment
# ---------------------------------------------------------------------------
def test_datapath_enforces_reno_per_policy(three_hosts):
    """Two flows into one receiver, one enforced with vSwitch-Reno and
    one with vSwitch-DCTCP: both controlled, entries typed per policy."""
    sim, topo, a, b, c, sw = three_hosts
    engine = PolicyEngine()
    engine.add_rule(PolicyEngine.match_src(a.addr),
                    FlowPolicy(algorithm="reno"))
    engine.add_rule(PolicyEngine.match_src(b.addr),
                    FlowPolicy(algorithm="dctcp"))
    vsw = {}
    for host in (a, b, c):
        vsw[host.addr] = AcdcVswitch(host, policy=engine)
        host.attach_vswitch(vsw[host.addr])
    Sink(c, 7000)
    conn_a = a.connect(c.addr, 7000)
    conn_a.send_forever()
    conn_b = b.connect(c.addr, 7000)
    conn_b.send_forever()
    sim.run(until=0.15)
    entry_a = vsw[a.addr].table.entries[conn_a.key()]
    entry_b = vsw[b.addr].table.entries[conn_b.key()]
    assert isinstance(entry_a.vswitch_cc, VswitchReno)
    assert isinstance(entry_b.vswitch_cc, VswitchDctcp)
    # Both flows are actually window-enforced and progressing.
    assert entry_a.enforcer.rewrites > 0
    assert entry_b.enforcer.rewrites > 0
    total = (conn_a.bytes_acked_total + conn_b.bytes_acked_total) * 8 / 0.15
    assert total > 8e9
    # Reno reacted to marks at least once (its halve-on-mark semantics).
    assert entry_a.vswitch_cc.cuts > 0
