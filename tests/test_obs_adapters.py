"""Tests for the ledger -> trace-bus adapters (repro.obs.adapters)."""

import warnings

import pytest

from repro.metrics import EventLog, FaultRecorder
from repro.obs import TraceBus
from repro.obs.adapters import (
    GUARD_KIND_TO_TYPE,
    EventLogAdapter,
    FaultRecorderAdapter,
)

FLOW = ("s1", 10000, "r1", 5000)


class FakeSim:
    def __init__(self):
        self.now = 0.0


def test_base_classes_warn_deprecation():
    with pytest.warns(DeprecationWarning):
        EventLog()
    with pytest.warns(DeprecationWarning):
        FaultRecorder()


def test_adapters_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        EventLogAdapter()
        FaultRecorderAdapter()


def test_unbound_event_log_adapter_is_a_pure_ledger():
    log = EventLogAdapter()
    log.record(0.1, "guard_escalate", flow=FLOW, level=1)
    assert isinstance(log, EventLog)
    assert log.kinds() == {"guard_escalate": 1}
    assert log.signature() == [(0.1, "guard_escalate", FLOW,
                                (("level", 1),))]


def test_event_log_adapter_mirrors_guard_kinds():
    bus = TraceBus(FakeSim())
    log = EventLogAdapter(bus)
    for kind in GUARD_KIND_TO_TYPE:
        log.record(0.0, kind, flow=FLOW)
    assert sorted(bus.by_type()) == sorted(GUARD_KIND_TO_TYPE.values())
    # Ledger behaviour is untouched by the mirroring.
    assert sum(log.kinds().values()) == len(GUARD_KIND_TO_TYPE)
    # Enforcement actions surface as warnings, bookkeeping as info.
    sev = {e.type: e.severity for e in bus.events}
    assert sev["guard.escalate"] > sev["guard.deescalate"]


def test_event_log_adapter_unmapped_kind_rides_catch_all():
    bus = TraceBus(FakeSim())
    log = EventLogAdapter(bus)
    log.record(0.0, "brand_new_kind", flow=FLOW, extra=7)
    (event,) = bus.events
    assert event.type == "guard.event"
    assert event.fields == {"kind": "brand_new_kind", "extra": 7}
    # The ledger keeps the raw kind.
    assert log.kinds() == {"brand_new_kind": 1}


def test_event_log_adapter_bind_bus_is_late_bindable():
    log = EventLogAdapter()
    log.record(0.0, "guard_shed", flow=FLOW)
    bus = TraceBus(FakeSim())
    log.bind_bus(bus)
    log.record(0.1, "guard_unshed", flow=FLOW)
    assert bus.by_type() == {"guard.unshed": 1}  # only post-bind records
    assert len(log) == 2


def test_fault_recorder_adapter_mirrors_fault_inject():
    bus = TraceBus(FakeSim())
    rec = FaultRecorderAdapter(bus)
    rec.record("loss", 3)
    rec.record("corrupt")
    assert isinstance(rec, FaultRecorder)
    assert rec.snapshot() == {"loss": 3, "corrupt": 1}
    assert bus.by_type() == {"fault.inject": 2}
    assert [e.fields["cause"] for e in bus.events] == ["loss", "corrupt"]


def test_fault_recorder_adapter_unbound_is_a_pure_ledger():
    rec = FaultRecorderAdapter()
    rec.record("reorder", 2)
    assert rec.total() == 2 and rec.snapshot() == {"reorder": 2}


def test_fault_recorder_adapter_merge_keeps_ledger_semantics():
    a, b = FaultRecorderAdapter(), FaultRecorderAdapter()
    a.record("loss", 1)
    b.record("loss", 2)
    a.merge(b)
    assert a.snapshot() == {"loss": 3}
