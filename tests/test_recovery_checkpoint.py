"""Checkpoint/restore: snapshot files, the WAL, and byte-identical resume.

The acceptance oracle for repro.recovery (DESIGN.md §13): a service run
that is checkpointed, killed and restored must produce a result —
meters, telemetry, trace signature — byte-identical to the same run
executed uninterrupted.  SIGKILL is delivered for real, in a child
process, so nothing politely flushes on the way down.
"""

import json
import os
import pickle
import signal
import subprocess
import sys

import pytest

from repro.control.commands import decode_wal_entry, encode_wal_entry
from repro.control.service import Service, ServiceConfig
from repro.recovery import (CheckpointError, DurableService, WriteAheadLog,
                            durable_service_cell, latest_checkpoint,
                            list_checkpoints, read_checkpoint,
                            write_checkpoint)
from repro.recovery.checkpoint import checkpoint_path, prune_checkpoints
from repro.runtime.spec import RunSpec, canonical_json
from repro.sim.engine import SimulationError, Simulator

CONFIG = dict(n_hosts=4, epoch_s=0.01, arrival_rate_hz=400.0,
              msg_sizes=[16_384, 65_536], msg_weights=[3, 1],
              peers=2, seed=5, guard=True)
SCHEDULE = [
    {"epoch": 1, "op": "set_policy", "hosts": ["h1"],
     "policy": {"max_rwnd": 2920}},
    {"epoch": 2, "op": "canary_start", "hosts": ["h2"],
     "policy": {"algorithm": "reno"}},
]


def canon(result) -> str:
    return canonical_json(result)


def baseline(epochs=4) -> dict:
    return RunSpec("repro.recovery.cell:durable_service_cell",
                   dict(config=CONFIG, schedule=SCHEDULE,
                        epochs=epochs)).execute()


# ---------------------------------------------------------------------------
# Snapshot file format
# ---------------------------------------------------------------------------

def test_checkpoint_roundtrip(tmp_path):
    path = checkpoint_path(tmp_path, 3)
    obj = {"heap": [1, 2, 3], "now": 0.25}
    info = write_checkpoint(path, obj, epoch=3, sim_now=0.25, wal_pos=7)
    loaded, read_info = read_checkpoint(path)
    assert loaded == obj
    assert read_info.epoch == 3
    assert read_info.wal_pos == 7
    assert read_info.payload_sha256 == info.payload_sha256


def test_truncated_payload_is_detected(tmp_path):
    path = checkpoint_path(tmp_path, 0)
    write_checkpoint(path, list(range(100)), epoch=0, sim_now=0.0, wal_pos=0)
    raw = path.read_bytes()
    path.write_bytes(raw[:-10])
    with pytest.raises(CheckpointError, match="torn payload"):
        read_checkpoint(path)


def test_bitflip_is_detected(tmp_path):
    path = checkpoint_path(tmp_path, 0)
    write_checkpoint(path, list(range(100)), epoch=0, sim_now=0.0, wal_pos=0)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointError, match="digest mismatch"):
        read_checkpoint(path)


def test_bad_magic_is_detected(tmp_path):
    path = tmp_path / "epoch-00000000.ckpt"
    path.write_bytes(b"not a checkpoint")
    with pytest.raises(CheckpointError, match="bad magic"):
        read_checkpoint(path)


def test_latest_falls_back_past_corrupt_newest(tmp_path):
    write_checkpoint(checkpoint_path(tmp_path, 1), "old",
                     epoch=1, sim_now=0.01, wal_pos=1)
    newest = checkpoint_path(tmp_path, 2)
    write_checkpoint(newest, "new", epoch=2, sim_now=0.02, wal_pos=2)
    newest.write_bytes(newest.read_bytes()[:-4])  # tear it
    obj, info = latest_checkpoint(tmp_path)
    assert obj == "old" and info.epoch == 1


def test_latest_of_empty_dir_is_none(tmp_path):
    assert latest_checkpoints_none(tmp_path)


def latest_checkpoints_none(tmp_path):
    return latest_checkpoint(tmp_path) is None \
        and latest_checkpoint(tmp_path / "missing") is None


def test_prune_keeps_newest(tmp_path):
    for epoch in range(5):
        write_checkpoint(checkpoint_path(tmp_path, epoch), epoch,
                         epoch=epoch, sim_now=0.0, wal_pos=0)
    assert prune_checkpoints(tmp_path, keep=2) == 3
    remaining = list_checkpoints(tmp_path)
    assert [p.name for p in remaining] == ["epoch-00000004.ckpt",
                                           "epoch-00000003.ckpt"]


# ---------------------------------------------------------------------------
# WAL framing and replay
# ---------------------------------------------------------------------------

def test_wal_entry_codec_roundtrip():
    cmd = {"epoch": 3, "op": "set_policy", "policy": {"max_rwnd": 1460}}
    line = encode_wal_entry(5, cmd)
    assert decode_wal_entry(line) == (5, cmd)


@pytest.mark.parametrize("mangle", [
    lambda line: line[:-3],                      # torn mid-body
    lambda line: "deadbeef" + line[8:],          # crc mismatch
    lambda line: line[:9],                       # no body at all
    lambda line: "zz",                           # not even a frame
    lambda line: line[:9] + "{not json",         # crc won't match either
])
def test_wal_entry_corruption_decodes_to_none(mangle):
    line = encode_wal_entry(0, {"op": "noop"})
    assert decode_wal_entry(mangle(line)) is None


def test_wal_append_scan_roundtrip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    assert wal.pos == 0
    assert wal.append({"op": "a"}) == 0
    assert wal.append({"op": "b"}) == 1
    wal.close()
    reopened = WriteAheadLog(tmp_path / "wal.jsonl")
    assert reopened.pos == 2
    assert reopened.entries() == [(0, {"op": "a"}), (1, {"op": "b"})]
    assert reopened.entries(start=1) == [(1, {"op": "b"})]
    reopened.close()


def test_wal_torn_tail_is_dropped(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    wal.append({"op": "a"})
    wal.append({"op": "b"})
    wal.close()
    with path.open("a", encoding="utf-8") as fh:
        fh.write(encode_wal_entry(2, {"op": "c"})[:-5])  # crash mid-append
    reopened = WriteAheadLog(path)
    assert reopened.pos == 2  # the torn entry does not exist
    assert reopened.torn_dropped == 1
    assert [cmd["op"] for _p, cmd in reopened.entries()] == ["a", "b"]
    reopened.close()


def test_wal_refuses_to_be_pickled(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    with pytest.raises(TypeError, match="supervisor state"):
        pickle.dumps(wal)
    wal.close()


# ---------------------------------------------------------------------------
# Engine guard
# ---------------------------------------------------------------------------

def test_simulator_refuses_mid_run_pickle():
    sim = Simulator()
    captured = {}

    def snap():
        try:
            pickle.dumps(sim)
        except SimulationError as exc:
            captured["error"] = exc

    sim.schedule(0.001, snap)
    sim.run(until=0.002)
    assert "error" in captured, "pickling inside run() must raise"
    assert "epoch boundary" in str(captured["error"])


# ---------------------------------------------------------------------------
# DurableService: snapshot / restore / replay
# ---------------------------------------------------------------------------

def test_durable_uninterrupted_matches_plain_service(tmp_path):
    durable = RunSpec(
        "repro.recovery.cell:durable_service_cell",
        dict(config=CONFIG, schedule=SCHEDULE, epochs=4,
             recovery_dir=str(tmp_path))).execute()
    assert canon(durable) == canon(baseline())


def test_restore_resumes_and_matches(tmp_path):
    first = DurableService(config=CONFIG, schedule=SCHEDULE, root=tmp_path)
    first.advance()
    first.advance()
    assert first.stats.snapshots == 2
    first.close()  # walk away mid-run (a polite crash)

    second = DurableService(root=tmp_path)  # no config: restore-only
    assert second.restored_from is not None
    assert second.restored_from.epoch == 2
    assert second.stats.restores == 1
    result = second.run(4)
    second.close()
    assert canon(result) == canon(baseline())


def test_wal_replays_post_snapshot_submissions(tmp_path):
    live_cmd = {"epoch": 2, "op": "set_policy", "hosts": ["h3"],
                "policy": {"min_rwnd": 1460}}

    # Baseline: uninterrupted durable run with the live submission.
    base = DurableService(config=CONFIG, schedule=SCHEDULE,
                          root=tmp_path / "base")
    base.advance()
    base.submit(live_cmd)
    expected = base.run(4)
    base.close()

    # Crash after the submission but before any later snapshot: the only
    # record of the command is the WAL.
    victim = DurableService(config=CONFIG, schedule=SCHEDULE,
                            root=tmp_path / "victim")
    victim.advance()
    victim.submit(live_cmd)
    victim.close()

    resumed = DurableService(root=tmp_path / "victim")
    assert resumed.stats.wal_replayed == 1
    result = resumed.run(4)
    resumed.close()
    assert canon(result) == canon(expected)


def test_crash_before_first_snapshot_replays_full_wal(tmp_path):
    victim = DurableService(config=CONFIG, schedule=SCHEDULE, root=tmp_path)
    victim.close()  # died before advance(): no checkpoint, only the WAL

    assert latest_checkpoint(tmp_path / "checkpoints") is None
    resumed = DurableService(config=CONFIG, root=tmp_path)
    assert resumed.restored_from is None
    assert resumed.stats.wal_replayed == len(SCHEDULE)
    result = resumed.run(4)
    resumed.close()
    assert canon(result) == canon(baseline())


def test_restore_only_root_without_state_raises(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        DurableService(root=tmp_path)


def test_recovery_events_stay_off_the_service_bus(tmp_path):
    supervisor = DurableService(config=CONFIG, schedule=SCHEDULE,
                                root=tmp_path)
    supervisor.run(3)
    service_types = {r["type"] for r in supervisor.service.obs.bus.records()}
    assert not any(t.startswith("recovery.") for t in service_types)
    supervisor_types = [r["type"] for r in supervisor.bus.records()]
    assert supervisor_types.count("recovery.snapshot") == 3
    supervisor.close()


def test_snapshot_history_is_pruned(tmp_path):
    supervisor = DurableService(config=CONFIG, schedule=SCHEDULE,
                                root=tmp_path, keep=2)
    supervisor.run(4)
    supervisor.close()
    names = [p.name for p in list_checkpoints(tmp_path / "checkpoints")]
    assert names == ["epoch-00000004.ckpt", "epoch-00000003.ckpt"]
    assert supervisor.stats.checkpoints_pruned == 2


def test_checkpoint_every_zero_disables_snapshots(tmp_path):
    supervisor = DurableService(config=CONFIG, schedule=SCHEDULE,
                                root=tmp_path, checkpoint_every=0)
    result = supervisor.run(4)
    supervisor.close()
    assert supervisor.stats.snapshots == 0
    assert list_checkpoints(tmp_path / "checkpoints") == []
    assert canon(result) == canon(baseline())


# ---------------------------------------------------------------------------
# The real thing: SIGKILL in a child process, resume in a fresh one
# ---------------------------------------------------------------------------

CHILD = """
import json, sys
sys.path.insert(0, {src!r})
from repro.runtime.spec import RunSpec
kwargs = json.loads(sys.argv[1])
result = RunSpec("repro.recovery.cell:durable_service_cell", kwargs).execute()
print(json.dumps(result))
"""


def run_cell_in_child(kwargs, hashseed):
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = {**os.environ, "PYTHONHASHSEED": str(hashseed)}
    return subprocess.run(
        [sys.executable, "-c", CHILD.format(src=src), json.dumps(kwargs)],
        capture_output=True, text=True, env=env)


def test_sigkill_mid_epoch_then_resume_is_byte_identical(tmp_path):
    kwargs = dict(config=CONFIG, schedule=SCHEDULE, epochs=4,
                  recovery_dir=str(tmp_path), kill={"at": 0.027})
    killed = run_cell_in_child(kwargs, hashseed=12345)
    assert killed.returncode == -signal.SIGKILL, killed.stderr

    cell_dirs = os.listdir(tmp_path)
    assert len(cell_dirs) == 1
    ckpt_dir = tmp_path / cell_dirs[0] / "checkpoints"
    assert list_checkpoints(ckpt_dir), "the kill must postdate a snapshot"

    # Different hash seed on purpose: byte-identity must not lean on
    # set/dict iteration order.
    resumed = run_cell_in_child(kwargs, hashseed=1)
    assert resumed.returncode == 0, resumed.stderr
    assert canon(json.loads(resumed.stdout)) == canon(baseline())


def test_kill_without_recovery_dir_is_refused():
    with pytest.raises(ValueError, match="kill requires recovery_dir"):
        durable_service_cell(config=CONFIG, epochs=2,
                             kill={"at": 0.005})


# ---------------------------------------------------------------------------
# Whole-graph picklability is a contract, not an accident
# ---------------------------------------------------------------------------

def test_live_guarded_service_pickles_at_epoch_boundary():
    svc = Service(ServiceConfig(**CONFIG), schedule=SCHEDULE)
    svc.run_epoch()
    blob = pickle.dumps(svc)
    clone = pickle.loads(blob)
    report_orig = svc.run_epoch()
    report_clone = clone.run_epoch()
    assert canon(report_orig) == canon(report_clone)
