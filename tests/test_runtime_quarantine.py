"""Guarded runtime: per-cell timeouts, seeded retries, poisoned-cell
quarantine, and corrupt-cache observability."""

import json
import time

import pytest

from repro.obs import ObsContext
from repro.runtime import (
    ResultCache,
    Runtime,
    RunSpec,
    cell_error,
    is_cell_error,
)


# Module-level workers: run specs reference them as f"{__name__}:name".
def double(x):
    return x * 2


def sleepy(x, for_s=30.0):
    time.sleep(for_s)
    return x


def always_raises(x):
    raise ValueError(f"poisoned cell {x}")


def flaky(x, sentinel):
    """Fails on the first attempt, succeeds once the sentinel exists —
    deterministic across processes, unlike in-memory attempt counters."""
    try:
        with open(sentinel, "x", encoding="utf-8") as fh:
            fh.write("attempt 1")
    except FileExistsError:
        return x * 10
    raise RuntimeError("first attempt always fails")


DOUBLE = f"{__name__}:double"
SLEEPY = f"{__name__}:sleepy"
RAISES = f"{__name__}:always_raises"
FLAKY = f"{__name__}:flaky"


class FakeSim:
    now = 0.25


# ---------------------------------------------------------------------------
# Construction / helpers
# ---------------------------------------------------------------------------

def test_guard_params_validated():
    with pytest.raises(ValueError):
        Runtime(cell_timeout_s=0.0)
    with pytest.raises(ValueError):
        Runtime(retries=-1)
    assert Runtime(cell_timeout_s=1.0).quarantine  # timeout implies guard


def test_cell_error_shape_round_trips():
    err = cell_error("m:f", "timeout", "cell exceeded 1s", 2)
    assert is_cell_error(err)
    assert not is_cell_error({"result": 3})
    assert json.loads(json.dumps(err)) == err


# ---------------------------------------------------------------------------
# Serial guarded path: exception containment + retry
# ---------------------------------------------------------------------------

def test_serial_retry_then_success(tmp_path):
    sentinel = str(tmp_path / "sentinel")
    rt = Runtime(jobs=1, quarantine=True, retries=1)
    results = rt.map([RunSpec(DOUBLE, {"x": 3}),
                      RunSpec(FLAKY, {"x": 4, "sentinel": sentinel})])
    assert results == [6, 40]
    assert rt.stats.retries_used == 1 and rt.stats.quarantined == 0


def test_serial_repeated_failure_quarantines_without_aborting():
    rt = Runtime(jobs=1, quarantine=True, retries=1)
    results = rt.map([RunSpec(DOUBLE, {"x": 1}),
                      RunSpec(RAISES, {"x": 9}),
                      RunSpec(DOUBLE, {"x": 2})])
    assert results[0] == 2 and results[2] == 4
    assert is_cell_error(results[1])
    detail = results[1]["cell_error"]
    assert detail["kind"] == "exception" and detail["attempts"] == 2
    assert "poisoned cell 9" in detail["message"]
    assert rt.stats.quarantined == 1


def test_unguarded_runtime_still_propagates():
    with pytest.raises(ValueError, match="poisoned"):
        Runtime(jobs=1).map([RunSpec(RAISES, {"x": 1})])


# ---------------------------------------------------------------------------
# Pool guarded path: timeouts tear the stuck worker down
# ---------------------------------------------------------------------------

def test_pool_timeout_quarantines_stuck_cell_without_wedging():
    rt = Runtime(jobs=2, cell_timeout_s=1.0, retries=0)
    started = time.monotonic()
    results = rt.map([RunSpec(SLEEPY, {"x": 1, "for_s": 60.0}),
                      RunSpec(DOUBLE, {"x": 2}),
                      RunSpec(DOUBLE, {"x": 3}),
                      RunSpec(DOUBLE, {"x": 4})])
    elapsed = time.monotonic() - started
    assert elapsed < 30.0, "a stuck worker must not wedge the merge"
    assert is_cell_error(results[0])
    assert results[0]["cell_error"]["kind"] == "timeout"
    assert results[1:] == [4, 6, 8]
    assert rt.stats.quarantined == 1


def test_pool_timeout_retries_before_quarantine():
    rt = Runtime(jobs=2, cell_timeout_s=0.5, retries=1)
    results = rt.map([RunSpec(SLEEPY, {"x": 1, "for_s": 60.0}),
                      RunSpec(DOUBLE, {"x": 5})])
    assert is_cell_error(results[0])
    assert results[0]["cell_error"]["attempts"] == 2
    assert results[1] == 10
    assert rt.stats.retries_used == 1 and rt.stats.quarantined == 1


def test_pool_exception_quarantine_preserves_order():
    rt = Runtime(jobs=2, quarantine=True, retries=0)
    results = rt.map([RunSpec(DOUBLE, {"x": i}) if i != 2
                      else RunSpec(RAISES, {"x": i})
                      for i in range(5)])
    assert [is_cell_error(r) for r in results] == \
        [False, False, True, False, False]
    assert [r for r in results if not is_cell_error(r)] == [0, 2, 6, 8]


def test_error_results_are_never_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    rt = Runtime(jobs=1, quarantine=True, retries=0, cache=cache)
    spec = RunSpec(RAISES, {"x": 7})
    assert is_cell_error(rt.map([spec])[0])
    assert spec.key() not in cache
    # The next run retries for real instead of replaying the failure.
    assert rt.stats.cache_hits == 0


# ---------------------------------------------------------------------------
# Corrupt cache entries: miss + counter + obs event
# ---------------------------------------------------------------------------

def corrupt_entry(cache: ResultCache, spec: RunSpec) -> str:
    key = spec.key()
    (cache.root / f"{key}.json").write_text('{"spec": {}, "resu',
                                            encoding="utf-8")
    return key


def test_corrupt_cache_entry_counts_and_emits(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    rt = Runtime(jobs=1, cache=cache)
    obs = ObsContext(FakeSim())
    obs.register_runtime(rt)
    spec = RunSpec(DOUBLE, {"x": 21})
    key = corrupt_entry(cache, spec)
    assert rt.map([spec]) == [42]  # miss -> rerun, not a crash
    assert cache.corrupt == 1 and cache.corrupt_keys == [key]
    assert rt.stats.cache_corrupt == 1
    assert rt.telemetry()["cache_corrupt"] == 1
    (event,) = [r for r in obs.bus.records() if r["type"] == "cache.corrupt"]
    assert event["key"] == key and event["sev"] == "warning"
    assert event["component"] == "runtime"
    # The rerun overwrote the torn entry: second lookup is a clean hit.
    assert rt.map([spec]) == [42]
    assert rt.stats.cache_hits == 1 and cache.corrupt == 1


def test_corrupt_entry_without_obs_still_counts(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    rt = Runtime(jobs=1, cache=cache)
    spec = RunSpec(DOUBLE, {"x": 2})
    corrupt_entry(cache, spec)
    assert rt.map([spec]) == [4]
    assert rt.stats.cache_corrupt == 1  # no obs bound: counted, no emit
