"""The source tree itself must be analyzer clean.

Tier-1 twin of the CI step ``python -m repro.analysis analyze src/``:
any new cross-file determinism leak, trace-schema drift, unguarded
zero-cost-off hook or unpicklable callable in checkpointed state landing
in ``src/repro`` fails here with the full file:line report.  The
committed baseline is *empty* — every finding the checkers surface must
be fixed (or suppressed with a written reason), never grandfathered.
"""

import json
import os

from repro.analysis import analyze_paths, format_report

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")


def test_source_tree_is_analyzer_clean():
    violations, stats = analyze_paths([SRC])
    assert violations == [], "\n" + format_report(
        violations, tool="repro-analysis")
    assert stats.modules > 50  # the walk actually covered the tree


def test_committed_baseline_is_empty():
    with open(os.path.join(REPO, ".repro-analysis-baseline.json")) as fh:
        baseline = json.load(fh)
    assert baseline["findings"] == {}
