"""Unit tests for AC/DC's ECN header manipulation (§3.2)."""

from repro.core.ecn import mark_egress_data, scrub_ingress_ack, scrub_ingress_data
from repro.net.packet import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Packet


def pkt(ecn=ECN_NOT_ECT, ece=False, vm_ect=False):
    return Packet(src="a", dst="b", sport=1, dport=2, payload_len=100,
                  ecn=ecn, ece=ece, vm_ect=vm_ect)


def test_mark_egress_legacy_vm():
    p = pkt(ECN_NOT_ECT)
    changed = mark_egress_data(p)
    assert changed
    assert p.ecn == ECN_ECT0
    assert p.vm_ect is False  # reserved bit remembers the VM's setting


def test_mark_egress_ecn_vm_is_noop():
    p = pkt(ECN_ECT0)
    changed = mark_egress_data(p)
    assert not changed
    assert p.vm_ect is True


def test_scrub_ingress_data_strips_ce_for_ecn_vm():
    p = pkt(ECN_CE, vm_ect=True)
    assert scrub_ingress_data(p)
    assert p.ecn == ECN_ECT0  # capability kept, congestion signal removed


def test_scrub_ingress_data_restores_legacy_vm():
    p = pkt(ECN_CE, vm_ect=False)
    assert scrub_ingress_data(p)
    assert p.ecn == ECN_NOT_ECT


def test_scrub_ingress_data_unmarked_legacy():
    p = pkt(ECN_ECT0, vm_ect=False)
    assert scrub_ingress_data(p)
    assert p.ecn == ECN_NOT_ECT


def test_scrub_ingress_data_idempotent():
    p = pkt(ECN_ECT0, vm_ect=True)
    assert not scrub_ingress_data(p)


def test_scrub_ingress_ack_clears_ece():
    p = pkt(ece=True)
    assert scrub_ingress_ack(p)
    assert not p.ece
    assert not scrub_ingress_ack(p)  # second scrub: nothing to do
