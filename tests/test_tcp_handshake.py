"""Guest TCP: handshake, window-scale and ECN negotiation."""

import pytest

from conftest import FaultInjector
from repro.tcp.connection import ESTABLISHED, SYN_SENT


def open_pair(sim, a, b, client_opts=None, server_opts=None):
    established = []
    b.listen(7000, on_accept=lambda c: established.append(c),
             **(server_opts or {}))
    conn = a.connect(b.addr, 7000, **(client_opts or {}))
    return conn, established


def test_three_way_handshake(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, accepted = open_pair(sim, a, b)
    assert conn.state == SYN_SENT
    sim.run(until=0.01)
    assert conn.state == ESTABLISHED
    assert len(accepted) == 1
    assert accepted[0].state == ESTABLISHED
    assert conn.established_at is not None


def test_established_callback_fires(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, _ = open_pair(sim, a, b)
    called = []
    conn.on_established = lambda: called.append(sim.now)
    sim.run(until=0.01)
    assert len(called) == 1


def test_window_scale_negotiated_both_ways(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, accepted = open_pair(sim, a, b,
                               client_opts={"wscale": 7},
                               server_opts={"wscale": 5})
    sim.run(until=0.01)
    assert conn.peer_wscale == 5
    assert accepted[0].peer_wscale == 7


def test_peer_rwnd_reflects_scaled_window(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, accepted = open_pair(
        sim, a, b, server_opts={"rcv_buf": 1 << 20, "wscale": 9})
    sim.run(until=0.01)
    assert conn.peer_rwnd >= 1 << 20


def test_ecn_negotiated_when_both_sides_ask(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, accepted = open_pair(sim, a, b, {"ecn": True}, {"ecn": True})
    sim.run(until=0.01)
    assert conn.ecn_ok and accepted[0].ecn_ok


@pytest.mark.parametrize("client_ecn,server_ecn", [
    (True, False), (False, True), (False, False)])
def test_ecn_not_negotiated_otherwise(two_hosts, client_ecn, server_ecn):
    sim, topo, a, b, _sw = two_hosts
    conn, accepted = open_pair(sim, a, b,
                               {"ecn": client_ecn}, {"ecn": server_ecn})
    sim.run(until=0.01)
    assert not conn.ecn_ok
    assert not accepted[0].ecn_ok


def test_handshake_seeds_rtt_estimate(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, _ = open_pair(sim, a, b)
    sim.run(until=0.01)
    assert conn.srtt is not None
    assert 0 < conn.srtt < 0.001


def test_syn_retransmitted_on_loss(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    # Drop the first SYN in the client's own datapath.
    injector = FaultInjector(drop_egress=lambda p, i: p.syn and i == 0)
    a.attach_vswitch(injector)
    conn, _ = open_pair(sim, a, b)
    sim.run(until=1.0)
    assert conn.state == ESTABLISHED
    assert conn.timeouts >= 1


def test_syn_to_closed_port_goes_nowhere(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn = a.connect(b.addr, 9999)  # nothing listens there
    sim.run(until=0.3)
    assert conn.state == SYN_SENT


def test_connect_twice_raises(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    conn, _ = open_pair(sim, a, b)
    sim.run(until=0.01)
    with pytest.raises(RuntimeError):
        conn.connect()


def test_ephemeral_ports_unique(two_hosts):
    sim, topo, a, b, _sw = two_hosts
    b.listen(7000)
    c1 = a.connect(b.addr, 7000)
    c2 = a.connect(b.addr, 7000)
    assert c1.lport != c2.lport
    assert c1.key() != c2.key()
