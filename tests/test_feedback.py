"""Unit tests for the PACK/FACK feedback channel (§3.2)."""

from repro.core.feedback import FeedbackReader, ReceiverFeedback
from repro.net.packet import ECN_CE, ECN_ECT0, PACK_OPTION, Packet, PackOption


def data(length=1000, ce=False):
    return Packet(src="a", dst="b", sport=1, dport=2, payload_len=length,
                  ecn=ECN_CE if ce else ECN_ECT0)


def ack(payload=0):
    return Packet(src="b", dst="a", sport=2, dport=1, ack=True,
                  payload_len=payload)


def test_counters_accumulate():
    fb = ReceiverFeedback()
    fb.on_data(data(1000))
    fb.on_data(data(500, ce=True))
    fb.on_data(data(200, ce=True))
    assert fb.total_bytes == 1700
    assert fb.marked_bytes == 700


def test_attach_pack_snapshot():
    fb = ReceiverFeedback()
    fb.on_data(data(1000, ce=True))
    a = ack()
    fb.attach_pack(a)
    assert a.pack == PackOption(total_bytes=1000, marked_bytes=1000)
    assert fb.packs_attached == 1


def test_can_piggyback_respects_mtu():
    fb = ReceiverFeedback()
    small = ack()
    assert fb.can_piggyback(small, mtu=1500)
    # An ACK already carrying a near-MTU payload cannot take the option.
    big = ack(payload=1500 - 40 - PACK_OPTION + 1)
    assert not fb.can_piggyback(big, mtu=1500)


def test_fack_mirrors_flow_and_is_flagged():
    fb = ReceiverFeedback()
    fb.on_data(data(800, ce=True))
    a = ack()
    a.ack_seq = 12345
    fack = fb.make_fack(a)
    assert fack.is_fack
    assert fack.src == "b" and fack.dst == "a"
    assert fack.ack_seq == 12345
    assert fack.pack.total_bytes == 800
    assert fb.facks_created == 1


# ---------------------------------------------------------------------------
# Sender-side reader
# ---------------------------------------------------------------------------
def test_reader_computes_deltas():
    reader = FeedbackReader()
    assert reader.consume(PackOption(1000, 200)) == (1000, 200)
    assert reader.consume(PackOption(3000, 200)) == (2000, 0)
    assert reader.consume(PackOption(4000, 700)) == (1000, 500)


def test_reader_none_is_zero():
    reader = FeedbackReader()
    assert reader.consume(None) == (0, 0)


def test_reader_ignores_stale_reports():
    """Reordered feedback (older cumulative totals) must not double count."""
    reader = FeedbackReader()
    reader.consume(PackOption(5000, 1000))
    assert reader.consume(PackOption(3000, 500)) == (0, 0)
    # Forward progress resumes from the high-water mark.
    assert reader.consume(PackOption(6000, 1200)) == (1000, 200)


def test_reader_duplicate_report_is_zero_delta():
    reader = FeedbackReader()
    reader.consume(PackOption(5000, 1000))
    assert reader.consume(PackOption(5000, 1000)) == (0, 0)
